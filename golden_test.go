package brisa_test

// Golden determinism tests: a table of scenarios exercising every engine
// subsystem, each with its Report JSON — minus wall-clock and toolchain
// metadata — committed as a golden file. The engine is a pure function of
// (seed, workload), so each report must come back byte-identical run after
// run, and across engine refactors. The same table feeds the
// sequential-vs-sharded equivalence harness (equivalence_test.go), which
// re-runs every case on 2 and 8 scheduler shards and requires the identical
// bytes — goldens are pinned on the sequential engine and cross-checked on
// the sharded one.
//
// Regenerate (only when a deliberate behaviour change shifts the metrics)
// with:
//
//	go test -run TestGoldenReport -update-golden .

import (
	"bytes"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"testing"
	"time"

	brisa "repro"
)

var updateGolden = flag.Bool("update-golden", false, "rewrite testdata golden reports from the current engine")

// goldenCase is one pinned scenario.
type goldenCase struct {
	name string // sub-test name
	file string // golden file under testdata/
	sc   brisa.Scenario
}

// goldenCases returns the pinned scenario table:
//
//   - tree: the original mid-size single-stream run — event scheduler
//     (timers, churn removals), bandwidth accounting (traffic probe),
//     delivered-seq tracking (latency/duplicates), repair paths.
//   - multistream: four concurrent streams from four distinct sources, with
//     the structure probe — cross-stream scheduling and per-stream
//     reporting.
//   - churn: sustained heavier churn with the repairs probe — orphan
//     accounting, soft/hard repair split, recovery delays.
//   - blob: a chunked large-payload workload (K-of-N erasure coded)
//     alongside a message stream — chunk relay over the emerged tree,
//     Have/Want pull repair, reconstruction accounting.
//   - lossy: the full fault pack — message loss, duplication, reorder, an
//     asymmetric mid-run partition, and bounded inbound buffers — pinning
//     the fault-injection hash streams and the Faults report section.
func goldenCases() []goldenCase {
	return []goldenCase{
		{
			name: "tree",
			file: "testdata/golden_report.json",
			sc: brisa.Scenario{
				Name: "golden-tree-1x64",
				Seed: 7,
				Topology: brisa.Topology{
					Nodes: 64,
					Peer:  brisa.Config{Mode: brisa.ModeTree, ViewSize: 4},
				},
				Workloads: []brisa.Workload{
					{Stream: 1, Messages: 30, Payload: 512},
				},
				Churn: &brisa.Churn{
					Script: "from 0s to 4s const churn 5% each 2s",
					Start:  2 * time.Second,
				},
				Probes: []brisa.Probe{
					brisa.ProbeLatency, brisa.ProbeDuplicates,
					brisa.ProbeConstruction, brisa.ProbeTraffic, brisa.ProbeRepairs,
				},
				Drain: 8 * time.Second,
			},
		},
		{
			name: "multistream",
			file: "testdata/golden_report_multistream.json",
			sc: brisa.Scenario{
				Name: "golden-multistream-4x48",
				Seed: 11,
				Topology: brisa.Topology{
					Nodes: 48,
					Peer:  brisa.Config{Mode: brisa.ModeTree, ViewSize: 4},
				},
				Workloads: []brisa.Workload{
					{Stream: 1, Source: 0, Messages: 12, Payload: 128},
					{Stream: 2, Source: 1, Messages: 12, Payload: 256},
					{Stream: 3, Source: 2, Messages: 12, Payload: 64, Start: 400 * time.Millisecond},
					{Stream: 4, Source: 3, Messages: 12, Payload: 512, Interval: 300 * time.Millisecond},
				},
				Probes: []brisa.Probe{
					brisa.ProbeLatency, brisa.ProbeDuplicates, brisa.ProbeStructure,
				},
				Drain: 6 * time.Second,
			},
		},
		{
			name: "churn",
			file: "testdata/golden_report_churn.json",
			sc: brisa.Scenario{
				Name: "golden-churn-1x64",
				Seed: 13,
				Topology: brisa.Topology{
					Nodes: 64,
					Peer:  brisa.Config{Mode: brisa.ModeTree, ViewSize: 4},
				},
				Workloads: []brisa.Workload{
					{Stream: 1, Messages: 40, Payload: 256},
				},
				Churn: &brisa.Churn{
					Script: "from 0s to 6s const churn 8% each 2s",
					Start:  1 * time.Second,
				},
				Probes: []brisa.Probe{
					brisa.ProbeLatency, brisa.ProbeDuplicates,
					brisa.ProbeTraffic, brisa.ProbeRepairs,
				},
				Drain: 8 * time.Second,
			},
		},
		{
			name: "blob",
			file: "testdata/golden_report_blob.json",
			sc: brisa.Scenario{
				Name: "golden-blob-1x48",
				Seed: 17,
				Topology: brisa.Topology{
					Nodes: 48,
					Peer:  brisa.Config{Mode: brisa.ModeTree, ViewSize: 4},
				},
				Workloads: []brisa.Workload{
					{Stream: 1, Source: 0, Messages: 10, Payload: 256},
				},
				BlobWorkloads: []brisa.BlobWorkload{
					// 96 KiB in 12 data chunks of 8 KiB plus 4 parity: any
					// 12 of 16 reconstruct.
					{Stream: 2, Source: 1, Blobs: 2, Size: 96 << 10, ChunkSize: 8 << 10, Total: 16},
				},
				Probes: []brisa.Probe{
					brisa.ProbeLatency, brisa.ProbeDuplicates, brisa.ProbeTraffic,
				},
				Drain: 8 * time.Second,
			},
		},
		{
			name: "lossy",
			file: "testdata/golden_report_lossy.json",
			sc: brisa.Scenario{
				Name: "golden-lossy-1x64",
				Seed: 19,
				Topology: brisa.Topology{
					Nodes: 64,
					Peer:  brisa.Config{Mode: brisa.ModeTree, ViewSize: 4},
				},
				Workloads: []brisa.Workload{
					{Stream: 1, Messages: 30, Payload: 256},
				},
				Faults: &brisa.FaultModel{
					Loss:      0.05,
					Duplicate: 0.03,
					Reorder:   0.10,
					Partitions: []brisa.Partition{
						{Start: 1 * time.Second, End: 2 * time.Second, Fraction: 0.25, Asymmetric: true},
					},
					Buffer: &brisa.BufferModel{Capacity: 4, Policy: brisa.BufferDropOldest, Service: 2 * time.Millisecond},
				},
				Probes: []brisa.Probe{
					brisa.ProbeLatency, brisa.ProbeDuplicates,
					brisa.ProbeTraffic, brisa.ProbeRepairs,
				},
				Drain: 10 * time.Second,
			},
		},
	}
}

// normalizeReport strips the fields that legitimately vary between runs
// (wall-clock, toolchain) and re-marshals with sorted keys.
func normalizeReport(t *testing.T, rep *brisa.Report) []byte {
	t.Helper()
	raw, err := json.Marshal(rep)
	if err != nil {
		t.Fatalf("marshal report: %v", err)
	}
	var m map[string]any
	if err := json.Unmarshal(raw, &m); err != nil {
		t.Fatalf("unmarshal report: %v", err)
	}
	delete(m, "wall_ms")
	delete(m, "go_version")
	out, err := json.MarshalIndent(m, "", "  ")
	if err != nil {
		t.Fatalf("re-marshal report: %v", err)
	}
	return append(out, '\n')
}

// runGolden executes one golden case on the given worker count and returns
// the normalized report bytes.
func runGolden(t *testing.T, sc brisa.Scenario, workers int) []byte {
	t.Helper()
	rep, err := brisa.Run(nil, brisa.SimRuntime{Workers: workers}, sc)
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	return normalizeReport(t, rep)
}

func TestGoldenReport(t *testing.T) {
	for _, gc := range goldenCases() {
		gc := gc
		t.Run(gc.name, func(t *testing.T) {
			first := runGolden(t, gc.sc, 1)
			second := runGolden(t, gc.sc, 1)
			if !bytes.Equal(first, second) {
				t.Fatalf("two same-seed runs produced different reports:\nrun1:\n%s\nrun2:\n%s", first, second)
			}

			if *updateGolden {
				if err := os.MkdirAll(filepath.Dir(gc.file), 0o755); err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(gc.file, first, 0o644); err != nil {
					t.Fatal(err)
				}
				t.Logf("wrote %s (%d bytes)", gc.file, len(first))
				return
			}

			want, err := os.ReadFile(gc.file)
			if err != nil {
				t.Fatalf("read golden (regenerate with -update-golden): %v", err)
			}
			if !bytes.Equal(first, want) {
				t.Fatalf("report diverged from golden file %s\ngot:\n%s\nwant:\n%s", gc.file, first, want)
			}
		})
	}
}
