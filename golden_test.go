package brisa_test

// Golden determinism test: one mid-size scenario's Report JSON, minus
// wall-clock and toolchain metadata, is committed as a golden file. The
// engine is a pure function of (seed, workload), so the report must come
// back byte-identical run after run — and across engine refactors. The
// golden file in testdata/ was produced by the pre-refactor time.Time-heap
// engine; the pooled int64-clock scheduler must reproduce it exactly.
//
// Regenerate (only when a deliberate behaviour change shifts the metrics)
// with:
//
//	go test -run TestGoldenReport -update-golden .

import (
	"bytes"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"testing"
	"time"

	brisa "repro"
)

var updateGolden = flag.Bool("update-golden", false, "rewrite testdata/golden_report.json from the current engine")

const goldenPath = "testdata/golden_report.json"

// goldenScenario is a mid-size run exercising every engine subsystem the
// refactor touched: the event scheduler (timers, churn removals), bandwidth
// accounting (traffic probe), delivered-seq tracking (latency/duplicates),
// and repair paths (churn + repairs probe).
func goldenScenario() brisa.Scenario {
	return brisa.Scenario{
		Name: "golden-tree-1x64",
		Seed: 7,
		Topology: brisa.Topology{
			Nodes: 64,
			Peer:  brisa.Config{Mode: brisa.ModeTree, ViewSize: 4},
		},
		Workloads: []brisa.Workload{
			{Stream: 1, Messages: 30, Payload: 512},
		},
		Churn: &brisa.Churn{
			Script: "from 0s to 4s const churn 5% each 2s",
			Start:  2 * time.Second,
		},
		Probes: []brisa.Probe{
			brisa.ProbeLatency, brisa.ProbeDuplicates,
			brisa.ProbeConstruction, brisa.ProbeTraffic, brisa.ProbeRepairs,
		},
		Drain: 8 * time.Second,
	}
}

// normalizeReport strips the fields that legitimately vary between runs
// (wall-clock, toolchain) and re-marshals with sorted keys.
func normalizeReport(t *testing.T, rep *brisa.Report) []byte {
	t.Helper()
	raw, err := json.Marshal(rep)
	if err != nil {
		t.Fatalf("marshal report: %v", err)
	}
	var m map[string]any
	if err := json.Unmarshal(raw, &m); err != nil {
		t.Fatalf("unmarshal report: %v", err)
	}
	delete(m, "wall_ms")
	delete(m, "go_version")
	out, err := json.MarshalIndent(m, "", "  ")
	if err != nil {
		t.Fatalf("re-marshal report: %v", err)
	}
	return append(out, '\n')
}

func TestGoldenReport(t *testing.T) {
	sc := goldenScenario()
	run := func() []byte {
		rep, err := brisa.RunSim(sc)
		if err != nil {
			t.Fatalf("run: %v", err)
		}
		return normalizeReport(t, rep)
	}

	first := run()
	second := run()
	if !bytes.Equal(first, second) {
		t.Fatalf("two same-seed runs produced different reports:\nrun1:\n%s\nrun2:\n%s", first, second)
	}

	if *updateGolden {
		if err := os.MkdirAll(filepath.Dir(goldenPath), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(goldenPath, first, 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("wrote %s (%d bytes)", goldenPath, len(first))
		return
	}

	want, err := os.ReadFile(goldenPath)
	if err != nil {
		t.Fatalf("read golden (regenerate with -update-golden): %v", err)
	}
	if !bytes.Equal(first, want) {
		t.Fatalf("report diverged from golden file %s\ngot:\n%s\nwant:\n%s", goldenPath, first, want)
	}
}
