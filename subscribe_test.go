package brisa_test

// Subscription back-pressure and lifecycle tests. The lifecycle tests are
// deliberately racy — concurrent Cancel vs push vs Node.Close — and exist
// to run under -race.

import (
	"sync"
	"testing"
	"time"

	brisa "repro"
)

// onePeerCluster builds a single-node cluster whose peer delivers local
// publishes — the smallest harness that exercises Subscription queues.
func onePeerCluster(t *testing.T) (*brisa.Cluster, *brisa.Peer) {
	t.Helper()
	c := newTestCluster(t, brisa.ClusterConfig{Nodes: 1, Peer: brisa.Config{Mode: brisa.ModeTree}})
	c.Net.RunFor(time.Millisecond) // run the Start events
	return c, c.Peers()[0]
}

func TestSubscribeOptsDropOldest(t *testing.T) {
	t.Parallel()
	_, peer := onePeerCluster(t)
	sub := peer.SubscribeOpts(1, brisa.SubOptions{Limit: 4}) // DropOldest default
	defer sub.Cancel()

	// Publish far more than the channel buffer plus the bound can hold
	// while nothing consumes.
	const msgs = 200
	for i := 0; i < msgs; i++ {
		peer.Publish(1, []byte{byte(i)})
	}

	// Drain what survived. Order must be preserved and the accounting
	// must balance: every message was either received or counted dropped.
	var got []uint32
	for {
		select {
		case m := <-sub.C():
			got = append(got, m.Seq)
			continue
		case <-time.After(200 * time.Millisecond):
		}
		break
	}
	dropped := sub.Dropped()
	if dropped == 0 {
		t.Fatalf("expected drops with limit 4 and %d unconsumed messages", msgs)
	}
	if uint64(len(got))+dropped != msgs {
		t.Errorf("received %d + dropped %d != published %d", len(got), dropped, msgs)
	}
	for i := 1; i < len(got); i++ {
		if got[i] <= got[i-1] {
			t.Fatalf("out of order after drops: %d then %d", got[i-1], got[i])
		}
	}
}

func TestSubscribeOptsBlockDeliversEverything(t *testing.T) {
	t.Parallel()
	_, peer := onePeerCluster(t)
	sub := peer.SubscribeOpts(1, brisa.SubOptions{Limit: 2, OnFull: brisa.Block})
	defer sub.Cancel()

	const msgs = 100
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < msgs; i++ {
			peer.Publish(1, []byte{byte(i)}) // blocks when the bound fills
		}
	}()

	// A consuming reader keeps the publisher moving; nothing is lost.
	for want := uint32(1); want <= msgs; want++ {
		select {
		case m := <-sub.C():
			if m.Seq != want {
				t.Fatalf("got seq %d, want %d", m.Seq, want)
			}
		case <-time.After(5 * time.Second):
			t.Fatalf("timed out at seq %d", want)
		}
	}
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("publisher still blocked after everything was consumed")
	}
	if d := sub.Dropped(); d != 0 {
		t.Errorf("Block policy dropped %d messages", d)
	}
}

func TestSubscribeOptsBlockReleasedByCancel(t *testing.T) {
	t.Parallel()
	_, peer := onePeerCluster(t)
	sub := peer.SubscribeOpts(1, brisa.SubOptions{Limit: 1, OnFull: brisa.Block})

	done := make(chan struct{})
	go func() {
		defer close(done)
		// 16 (channel) + 1 (pump in flight) + 1 (bound) fit; publishing
		// far past that must block with no consumer.
		for i := 0; i < 50; i++ {
			peer.Publish(1, []byte{byte(i)})
		}
	}()
	select {
	case <-done:
		t.Fatal("publisher never blocked despite Block policy and no consumer")
	case <-time.After(100 * time.Millisecond):
	}
	sub.Cancel()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("Cancel did not release the blocked publisher")
	}
}

// TestLiveCloseReleasesBlockedSubscriber pins the Close ordering: a
// Block-policy subscription whose consumer stalled holds the node's actor
// inside push, and Close must cancel subscriptions first or the runtime
// shutdown waits on the stuck actor forever.
func TestLiveCloseReleasesBlockedSubscriber(t *testing.T) {
	t.Parallel()
	node, err := brisa.Listen("127.0.0.1:0", brisa.Config{Mode: brisa.ModeTree})
	if err != nil {
		t.Fatalf("Listen: %v", err)
	}
	node.SubscribeOpts(1, brisa.SubOptions{Limit: 1, OnFull: brisa.Block})
	go func() {
		for i := 0; i < 50; i++ { // far past channel buffer + bound: blocks the actor
			node.Publish(1, []byte("x"))
		}
	}()
	time.Sleep(100 * time.Millisecond) // let the actor wedge in push
	closed := make(chan struct{})
	go func() {
		node.Close()
		close(closed)
	}()
	select {
	case <-closed:
	case <-time.After(5 * time.Second):
		t.Fatal("Close deadlocked on a blocked subscriber")
	}
}

// TestSubscriptionLifecycleRace hammers Cancel vs push vs Node.Close from
// concurrent goroutines on a live node. It asserts termination; the -race
// CI job asserts memory safety.
func TestSubscriptionLifecycleRace(t *testing.T) {
	t.Parallel()
	node, err := brisa.Listen("127.0.0.1:0", brisa.Config{Mode: brisa.ModeTree})
	if err != nil {
		t.Fatalf("Listen: %v", err)
	}
	defer node.Close()

	const subsN = 8
	subs := make([]*brisa.Subscription, subsN)
	for i := range subs {
		subs[i] = node.SubscribeOpts(1, brisa.SubOptions{Limit: 2}) // bounded: exercises the overflow path too
	}

	var wg sync.WaitGroup
	stop := make(chan struct{})

	// Publisher: pushes into every subscription through the actor.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
				node.Publish(1, []byte("x"))
			}
		}
	}()
	// Readers: drain until their channel closes.
	for _, s := range subs {
		s := s
		wg.Add(1)
		go func() {
			defer wg.Done()
			for range s.C() {
			}
		}()
	}
	// Cancellers: each subscription cancelled twice, concurrently.
	for _, s := range subs {
		s := s
		for k := 0; k < 2; k++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				s.Cancel()
			}()
		}
	}

	time.Sleep(50 * time.Millisecond)
	node.Close() // cancelAll races the explicit Cancels and the publisher
	close(stop)

	fin := make(chan struct{})
	go func() { wg.Wait(); close(fin) }()
	select {
	case <-fin:
	case <-time.After(10 * time.Second):
		t.Fatal("lifecycle goroutines did not terminate")
	}
}
