package brisa

import (
	"context"
	"fmt"
	goruntime "runtime"
	"sort"
	"strings"
)

// Runtime executes Scenarios. The two built-in implementations are
// SimRuntime (the deterministic discrete-event simulator) and LiveRuntime
// (loopback TCP nodes); both run any valid Scenario — churn scripts,
// traffic probes, and per-peer configurations included — into a Report of
// identical shape, so results compare directly across runtimes.
//
// Call the package-level Run rather than the interface method: Run applies
// the scenario's documented defaults, threads the context, and stamps the
// Report's run metadata.
type Runtime interface {
	// Name labels Reports ("sim", "live") and keys the registry.
	Name() string
	// Run executes the scenario. Implementations validate the scenario
	// (after any runtime-specific normalization, e.g. adopting an existing
	// cluster's dimensions) and honor context cancellation in workload
	// generators, churn loops, and probe drains.
	Run(ctx context.Context, sc Scenario) (*Report, error)
}

// Run is the single entrypoint for executing a Scenario on any Runtime:
//
//	rep, err := brisa.Run(ctx, brisa.LiveRuntime{}, sc)
//
// It applies the scenario's defaults, executes it on rt, and stamps the
// Report with run metadata (runtime name, Go version). Cancelling ctx
// aborts the run — workload generators, churn loops, and probe drains all
// observe it — and Run returns the context's error.
func Run(ctx context.Context, rt Runtime, sc Scenario) (*Report, error) {
	if rt == nil {
		return nil, fmt.Errorf("brisa: Run needs a Runtime (try SimRuntime{} or LiveRuntime{})")
	}
	if ctx == nil {
		ctx = context.Background()
	}
	if len(sc.BlobWorkloads) > 0 {
		bc, ok := rt.(BlobCapable)
		if !ok || !bc.SupportsBlobs() {
			return nil, fmt.Errorf("brisa: Scenario %q has blob workloads, but runtime %q does not support blobs", sc.Name, rt.Name())
		}
	}
	if sc.Faults != nil {
		fc, ok := rt.(FaultCapable)
		if !ok || !fc.SupportsFaults() {
			return nil, fmt.Errorf("brisa: Scenario %q has fault injection, but runtime %q does not support it (faults are simulated; real wires bring their own)", sc.Name, rt.Name())
		}
	}
	rep, err := rt.Run(ctx, sc.withDefaults())
	if err != nil {
		return nil, err
	}
	rep.Runtime = rt.Name()
	rep.GoVersion = goruntime.Version()
	return rep, nil
}

// BlobCapable marks runtimes that execute BlobWorkloads. Run refuses a
// scenario with blob workloads on a runtime that does not implement it (or
// that reports false) — both built-in runtimes support blobs.
type BlobCapable interface {
	// SupportsBlobs reports whether the runtime executes BlobWorkloads.
	SupportsBlobs() bool
}

// FaultCapable marks runtimes that execute Scenario.Faults. Run refuses a
// faulty scenario on a runtime that does not implement it (or that reports
// false) — only the simulator does: fault injection lives in the simulated
// send/receive paths, and real wires bring their own faults.
type FaultCapable interface {
	// SupportsFaults reports whether the runtime injects Scenario.Faults.
	SupportsFaults() bool
}

// SimRuntime runs scenarios on the deterministic discrete-event simulator:
// virtual time, seed-reproducible, thousands of nodes in one process.
type SimRuntime struct {
	// Cluster, when non-nil, runs scenarios against this existing cluster
	// (bootstrapping it first if needed) instead of building a fresh one
	// per run — the hook for callers that inspect or perturb the cluster
	// between runs. A scenario with a zero Topology adopts the cluster's
	// dimensions. Workers is ignored then: the cluster was built with its
	// own setting.
	Cluster *Cluster

	// Workers is the number of scheduler shards the simulator partitions
	// node actors across. Zero (the default) picks one shard per CPU,
	// capped at the scheduler's shard limit, so multi-core hosts get
	// parallelism without configuration; 1 forces the sequential engine.
	// With more than one shard independent node actors execute on worker
	// goroutines under a conservative safe-time scheduler; the Report is
	// byte-identical for every worker count (the equivalence harness in
	// the test suite pins this). See ClusterConfig.Workers for the
	// callback-safety requirements.
	Workers int
}

// Name implements Runtime.
func (SimRuntime) Name() string { return "sim" }

// SupportsBlobs implements BlobCapable.
func (SimRuntime) SupportsBlobs() bool { return true }

// SupportsFaults implements FaultCapable.
func (SimRuntime) SupportsFaults() bool { return true }

// NewCluster builds the simulated cluster this runtime's Run would build
// for the scenario — topology, seed and Workers applied, not yet
// bootstrapped. Use it when the cluster must outlive the run (reading
// Net.EventsFired, perturbing state between runs):
//
//	c, err := brisa.SimRuntime{Workers: 8}.NewCluster(sc)
//	defer c.Close()
//	rep, err := brisa.Run(ctx, brisa.SimRuntime{Cluster: c}, sc)
func (rt SimRuntime) NewCluster(sc Scenario) (*Cluster, error) {
	sc = sc.withDefaults()
	if err := sc.Validate(); err != nil {
		return nil, err
	}
	cfg := sc.Topology.clusterConfig(sc.Seed)
	cfg.Faults = sc.Faults
	cfg.Workers = rt.Workers
	return NewCluster(cfg)
}

// LiveRuntime runs scenarios on real TCP nodes bound to loopback: one actor
// goroutine per node, wall-clock time, real wire bytes. Churn scripts kill
// (close) and restart (re-listen + join) nodes; ProbeTraffic reads the
// livenet per-connection tap.
type LiveRuntime struct {
	// Addr is the address nodes bind, normally with port 0 so every node
	// gets its own (default "127.0.0.1:0"). Future transports (TLS,
	// non-loopback interfaces) hang off this struct.
	Addr string
}

// Name implements Runtime.
func (LiveRuntime) Name() string { return "live" }

// SupportsBlobs implements BlobCapable.
func (LiveRuntime) SupportsBlobs() bool { return true }

// Runtimes returns the built-in runtimes keyed by Name — the registry
// commands resolve "-runtime" flags against. The dist entry is a template:
// it needs Agents set before it can run (brisa-sim -agents fills it in).
func Runtimes() map[string]Runtime {
	return map[string]Runtime{
		SimRuntime{}.Name():  SimRuntime{},
		LiveRuntime{}.Name(): LiveRuntime{},
		DistRuntime{}.Name(): DistRuntime{},
	}
}

// LookupRuntime resolves a runtime by name, or reports the known names.
func LookupRuntime(name string) (Runtime, error) {
	reg := Runtimes()
	if rt, ok := reg[name]; ok {
		return rt, nil
	}
	names := make([]string, 0, len(reg))
	for n := range reg {
		names = append(names, n)
	}
	sort.Strings(names)
	return nil, fmt.Errorf("brisa: unknown runtime %q (have %s)", name, strings.Join(names, ", "))
}
