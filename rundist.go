package brisa

import (
	"bufio"
	"context"
	"encoding/json"
	"fmt"
	"math/rand"
	"net"
	"sort"
	"sync"
	"time"

	"repro/internal/ids"
	"repro/internal/monitor"
	"repro/internal/stats"
	"repro/internal/trace"
)

// DistRuntime runs scenarios across machines: real peer processes spawned by
// pre-started brisa-agent daemons (one per host), streaming measurements
// back to an in-driver monitor collector that folds them into the shared
// Report. The unchanged Scenario grammar applies — Topology places
// join-indexed peers round-robin across the agents (PeerConfig re-keying
// carries over), Workloads and BlobWorkloads are dispatched to the owning
// agent, and Churn scripts kill and restart real remote processes.
//
// Everything works with all agents on 127.0.0.1 (how CI exercises it) and
// across real hosts; cross-host latency measurements inherit the hosts'
// clock synchronization (see internal/monitor). Like LiveRuntime, dist runs
// are wall-clock and not seed-reproducible.
type DistRuntime struct {
	// Agents are the control addresses of pre-started brisa-agent daemons
	// ("host:port"). Required; peers are placed round-robin across them in
	// join-index order.
	Agents []string
	// Monitor is the address the driver's measurement collector listens on
	// (default "127.0.0.1:0"). On multi-host deployments set it to an
	// address on the driver's host that every agent host can reach.
	Monitor string
	// DialTimeout bounds each agent control-connection dial (default 5s).
	DialTimeout time.Duration
}

// Name implements Runtime.
func (DistRuntime) Name() string { return "dist" }

// SupportsBlobs implements BlobCapable.
func (DistRuntime) SupportsBlobs() bool { return true }

// distStabilize bounds the post-join readiness poll when the topology does
// not set StabilizeTime: process spawns and real links are slower than
// loopback goroutines, so the dist default is above liveStabilize.
const distStabilize = 30 * time.Second

// distFlushTimeout bounds each flush barrier (spawned workers answer in
// milliseconds; the headroom covers loaded CI machines).
const distFlushTimeout = 30 * time.Second

// Run executes the scenario across the runtime's agents: spawn one worker
// process per topology slot (round-robin), bootstrap with a readiness poll,
// dispatch workloads to the owning agents in wall time, replay the churn
// script by killing and spawning real remote processes, and fold the
// monitor stream — behind flush barriers, in sorted agent/node order — into
// a Report of the same shape the other runtimes produce. Prefer the
// package-level Run, which applies defaults and stamps run metadata.
func (rt DistRuntime) Run(ctx context.Context, sc Scenario) (*Report, error) {
	sc = sc.withDefaults()
	if err := sc.Validate(); err != nil {
		return nil, err
	}
	if ctx == nil {
		ctx = context.Background()
	}
	if len(rt.Agents) == 0 {
		return nil, fmt.Errorf("brisa: dist: DistRuntime needs at least one agent address")
	}
	// Fail fast on configs that cannot cross a process boundary, before any
	// remote state exists. Churn joins derive configs at higher indices
	// later; those panic like the live runtime's derivation does.
	n := sc.Topology.Nodes
	for i := 0; i < n; i++ {
		if _, err := distConfigOf(sc.Topology.configFor(i)); err != nil {
			return nil, fmt.Errorf("brisa: dist %q: node %d: %w", sc.Name, i, err)
		}
	}

	wallStart := time.Now()
	monAddr := rt.Monitor
	if monAddr == "" {
		monAddr = "127.0.0.1:0"
	}
	mon, err := monitor.NewCollector(monAddr)
	if err != nil {
		return nil, err
	}
	defer mon.Close()

	dn := &distNet{
		sc:      sc,
		ctx:     ctx,
		mon:     mon,
		rng:     rand.New(rand.NewSource(sc.Seed)),
		protect: make(map[NodeID]bool),
	}
	defer dn.shutdown()
	dialTimeout := rt.DialTimeout
	if dialTimeout == 0 {
		dialTimeout = 5 * time.Second
	}
	for _, addr := range rt.Agents {
		a, err := dialAgent(addr, dialTimeout)
		if err != nil {
			return nil, fmt.Errorf("brisa: dist %q: %w", sc.Name, err)
		}
		dn.agents = append(dn.agents, a)
	}

	// Spawn phase: one worker process per topology slot, round-robin across
	// agents in join-index order.
	for i := 0; i < n; i++ {
		if err := ctx.Err(); err != nil {
			return nil, fmt.Errorf("brisa: dist %q aborted: %w", sc.Name, err)
		}
		if _, err := dn.spawn(); err != nil {
			return nil, fmt.Errorf("brisa: dist %q: node %d: %w", sc.Name, i, err)
		}
	}
	initial := dn.aliveMembers()
	if err := mon.WaitFor(ctx, memberIDs(initial), distFlushTimeout); err != nil {
		return nil, fmt.Errorf("brisa: dist %q: %w", sc.Name, err)
	}

	// Bootstrap: like the live runtime, every node joins through the first
	// node plus its predecessor. The worker's join op blocks until the
	// overlay accepts it.
	for i := 1; i < n; i++ {
		if err := ctx.Err(); err != nil {
			return nil, fmt.Errorf("brisa: dist %q aborted: %w", sc.Name, err)
		}
		contacts := []string{initial[0].addr}
		if i > 1 {
			contacts = append(contacts, initial[i-1].addr)
		}
		m := initial[i]
		resp, err := m.agent.workerCmd(ctx, m.worker, distWorkerCmd{Op: "join", Contacts: contacts, Wait: true})
		if err == nil && !resp.OK {
			err = fmt.Errorf("%s", resp.Err)
		}
		if err != nil {
			return nil, fmt.Errorf("brisa: dist %q: node %d join: %w", sc.Name, i, err)
		}
	}
	if n > 1 {
		settle := sc.Topology.StabilizeTime
		if settle == 0 {
			settle = distStabilize
		}
		if err := dn.awaitReady(ctx, settle); err != nil {
			return nil, fmt.Errorf("brisa: dist %q: %w", sc.Name, err)
		}
	}

	for _, w := range sc.Workloads {
		dn.protect[initial[w.Source].id] = true
	}
	for _, w := range sc.BlobWorkloads {
		dn.protect[initial[w.Source].id] = true
	}

	t0 := time.Now()
	// Traffic baseline: a flush barrier gives every node's precise counters
	// at dissemination start — bytes before it are the stabilization phase.
	if sc.probed(ProbeTraffic) {
		if err := dn.flushBarrier(ctx); err != nil {
			return nil, fmt.Errorf("brisa: dist %q: baseline: %w", sc.Name, err)
		}
		mon.MarkTrafficBase(memberIDs(dn.aliveMembers()))
	}

	// Churn: replay the script in wall time on a dedicated goroutine,
	// bracketed by flush-barrier metric snapshots. Fail kills a real remote
	// process (SIGKILL through its agent); Join spawns a fresh one.
	var churnDone chan struct{}
	var churnErr error
	var before, after map[NodeID]monitor.NodeMetrics
	if sc.Churn != nil {
		// Parse errors were caught by Validate; a failure here is a bug.
		parsed, err := trace.Parse(sc.Churn.Script)
		if err != nil {
			panic("brisa: churn script: " + err.Error())
		}
		sched := &churnSchedule{}
		parsed.Replay(sched, dn)
		sort.SliceStable(sched.events, func(i, j int) bool {
			return sched.events[i].at < sched.events[j].at
		})
		window, _ := sc.Churn.window()
		anchor := t0.Add(sc.Churn.Start)
		churnDone = make(chan struct{})
		go func() {
			defer close(churnDone)
			if !sleepUntil(ctx, anchor) {
				return
			}
			before, churnErr = dn.metricsSnapshot(ctx)
			for _, ev := range sched.events {
				if !sleepUntil(ctx, anchor.Add(ev.at)) {
					return
				}
				ev.fn()
			}
			if !sleepUntil(ctx, anchor.Add(window)) {
				return
			}
			var err error
			after, err = dn.metricsSnapshot(ctx)
			if churnErr == nil {
				churnErr = err
			}
		}()
	}

	// Workload dispatch: one goroutine per stream, paced in wall time,
	// publishing through the source's agent. The worker records the publish
	// instant on its own clock and streams it to the collector.
	var wg sync.WaitGroup
	for wi, w := range sc.Workloads {
		wi, w := wi, w
		wg.Add(1)
		go func() {
			defer wg.Done()
			if !sleepFor(ctx, w.Start) {
				return
			}
			src := initial[w.Source]
			for i := 0; i < w.Messages; i++ {
				resp, err := src.agent.workerCmd(ctx, src.worker, distWorkerCmd{Op: "publish", WI: wi})
				if err == nil && !resp.OK {
					err = fmt.Errorf("%s", resp.Err)
				}
				if err != nil {
					dn.fail(fmt.Errorf("workload %d publish %d: %w", wi, i+1, err))
					return
				}
				if i < w.Messages-1 && !sleepFor(ctx, w.Interval) {
					return
				}
			}
		}()
	}
	for wi, w := range sc.BlobWorkloads {
		wi, w := wi, w
		wg.Add(1)
		go func() {
			defer wg.Done()
			if !sleepFor(ctx, w.Start) {
				return
			}
			src := initial[w.Source]
			for i := 0; i < w.Blobs; i++ {
				resp, err := src.agent.workerCmd(ctx, src.worker, distWorkerCmd{Op: "publishblob", WI: wi, Index: i})
				if err == nil && !resp.OK {
					err = fmt.Errorf("%s", resp.Err)
				}
				if err != nil {
					dn.fail(fmt.Errorf("blob workload %d publish %d: %w", wi, i+1, err))
					return
				}
				if i < w.Blobs-1 && !sleepFor(ctx, w.Interval) {
					return
				}
			}
		}()
	}
	wg.Wait()
	if churnDone != nil {
		<-churnDone
	}
	if err := ctx.Err(); err != nil {
		return nil, fmt.Errorf("brisa: dist %q aborted: %w", sc.Name, err)
	}
	if err := dn.err(); err != nil {
		return nil, fmt.Errorf("brisa: dist %q: %w", sc.Name, err)
	}
	if churnErr != nil {
		return nil, fmt.Errorf("brisa: dist %q: churn bracket: %w", sc.Name, churnErr)
	}

	// Drain: poll the collector until every alive node delivered every
	// stream in full, bounded by the drain budget. Unlike the live runtime,
	// churned-in nodes count too: a workload that starts after the churn
	// window (the distributed pattern for full-reliability runs) lets them
	// catch up completely, and a generic scenario just spends the budget —
	// the same worst case live has.
	deadline := time.Now().Add(sc.Drain)
	for time.Now().Before(deadline) && ctx.Err() == nil {
		if dn.complete() {
			break
		}
		time.Sleep(livePoll)
	}
	if err := ctx.Err(); err != nil {
		return nil, fmt.Errorf("brisa: dist %q aborted: %w", sc.Name, err)
	}
	elapsed := time.Since(t0)

	// Final flush barrier: after it passes, the collector holds every
	// node's complete measurement stream and end-of-run snapshots.
	if err := dn.flushBarrier(ctx); err != nil {
		return nil, fmt.Errorf("brisa: dist %q: final flush: %w", sc.Name, err)
	}

	rep := &Report{
		Name:    sc.Name,
		Runtime: DistRuntime{}.Name(),
		Nodes:   n,
		Alive:   len(dn.aliveMembers()),
		Elapsed: elapsed,
	}
	dn.fold(sc, initial, rep, elapsed, before, after)
	rep.Wall = time.Since(wallStart)
	return rep, nil
}

// memberIDs projects members onto their node ids.
func memberIDs(ms []*distMember) []NodeID {
	out := make([]NodeID, len(ms))
	for i, m := range ms {
		out[i] = m.id
	}
	return out
}

// distNet is the distributed runtime's member set: creation-ordered worker
// processes across the agents, their liveness, and the churn plumbing —
// the remote sibling of liveNet.
type distNet struct {
	sc  Scenario
	ctx context.Context
	mon *monitor.Collector

	agents []*agentConn

	mu      sync.Mutex
	rng     *rand.Rand
	members []*distMember
	protect map[NodeID]bool
	token   uint64
	firstEr error
}

// distMember is one worker-process slot: members keep their slot (and
// index) after death, like the live runtime's members.
type distMember struct {
	index  int
	agent  *agentConn
	worker int // agent-assigned worker handle
	addr   string
	id     NodeID
	alive  bool
}

func (dn *distNet) fail(err error) {
	dn.mu.Lock()
	if dn.firstEr == nil {
		dn.firstEr = err
	}
	dn.mu.Unlock()
}

func (dn *distNet) err() error {
	dn.mu.Lock()
	defer dn.mu.Unlock()
	return dn.firstEr
}

func (dn *distNet) nextIndex() int {
	dn.mu.Lock()
	defer dn.mu.Unlock()
	return len(dn.members)
}

// spawn starts one worker at the next join index on its round-robin agent.
func (dn *distNet) spawn() (*distMember, error) {
	idx := dn.nextIndex()
	cfg := dn.sc.Topology.configFor(idx)
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	dc, err := distConfigOf(cfg)
	if err != nil {
		return nil, err
	}
	return dn.spawnWith(idx, dc)
}

// spawnWith starts one worker with an already-lowered configuration.
func (dn *distNet) spawnWith(idx int, dc DistConfig) (*distMember, error) {
	a := dn.agents[idx%len(dn.agents)]
	spec := DistWorkerSpec{
		Agent:         a.addr,
		Index:         idx,
		Monitor:       dn.mon.Addr(),
		Config:        dc,
		Workloads:     dn.sc.Workloads,
		BlobWorkloads: dn.sc.BlobWorkloads,
		Probes:        dn.sc.Probes,
	}
	resp, err := a.call(dn.ctx, distCtrlReq{Op: "spawn", Spec: &spec})
	if err == nil && !resp.OK {
		err = fmt.Errorf("agent %s: %s", a.addr, resp.Err)
	}
	if err != nil {
		return nil, err
	}
	id, err := ParseNodeID(resp.Node)
	if err != nil {
		return nil, fmt.Errorf("agent %s: worker node id %q: %w", a.addr, resp.Node, err)
	}
	m := &distMember{index: idx, agent: a, worker: resp.Worker, addr: resp.Addr, id: id, alive: true}
	dn.mu.Lock()
	dn.members = append(dn.members, m)
	dn.mu.Unlock()
	return m, nil
}

// aliveMembers snapshots the currently alive members in creation order.
func (dn *distNet) aliveMembers() []*distMember {
	dn.mu.Lock()
	defer dn.mu.Unlock()
	out := make([]*distMember, 0, len(dn.members))
	for _, m := range dn.members {
		if m.alive {
			out = append(out, m)
		}
	}
	return out
}

// awaitReady polls until every alive worker holds at least one active
// neighbor, bounded by the given budget.
func (dn *distNet) awaitReady(ctx context.Context, bound time.Duration) error {
	deadline := time.Now().Add(bound)
	for {
		if err := ctx.Err(); err != nil {
			return err
		}
		ready := true
		for _, m := range dn.aliveMembers() {
			resp, err := m.agent.workerCmd(ctx, m.worker, distWorkerCmd{Op: "ready"})
			if err != nil || !resp.OK || resp.Neighbors == 0 {
				ready = false
				break
			}
		}
		if ready {
			return nil
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("overlay not connected within %v", bound)
		}
		time.Sleep(livePoll)
	}
}

// flushBarrier runs one flush round: every alive worker drains its buffers
// and snapshots onto its monitor connection, then the collector is awaited
// until it has seen the token from all of them — after which it holds a
// consistent cut of every node's measurements.
func (dn *distNet) flushBarrier(ctx context.Context) error {
	dn.mu.Lock()
	dn.token++
	token := dn.token
	dn.mu.Unlock()
	members := dn.aliveMembers()
	var wg sync.WaitGroup
	errs := make([]error, len(members))
	for i, m := range members {
		i, m := i, m
		wg.Add(1)
		go func() {
			defer wg.Done()
			resp, err := m.agent.workerCmd(ctx, m.worker, distWorkerCmd{Op: "flush", Token: token})
			if err == nil && !resp.OK {
				err = fmt.Errorf("%s", resp.Err)
			}
			errs[i] = err
		}()
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			return fmt.Errorf("flush node %d: %w", members[i].index, err)
		}
	}
	return dn.mon.WaitFlush(ctx, token, memberIDs(members), distFlushTimeout)
}

// metricsSnapshot reads every alive node's protocol counters behind a flush
// barrier — the churn brackets. As on the live runtime, counters of nodes
// that die afterwards are lost with their process.
func (dn *distNet) metricsSnapshot(ctx context.Context) (map[NodeID]monitor.NodeMetrics, error) {
	if err := dn.flushBarrier(ctx); err != nil {
		return nil, err
	}
	alive := dn.aliveMembers()
	out := make(map[NodeID]monitor.NodeMetrics, len(alive))
	dn.mon.View(func(nodes map[ids.NodeID]*monitor.NodeState, _ map[int]map[uint32]int64, _ map[int]map[uint32]monitor.BlobPublished) {
		for _, m := range alive {
			if ns, ok := nodes[m.id]; ok {
				out[m.id] = ns.Metrics
			}
		}
	})
	return out, nil
}

// complete reports whether every alive node delivered every workload in
// full — the drain's early exit. Counts come from the collector's buffered
// sample stream (at most one worker flush interval stale).
func (dn *distNet) complete() bool {
	members := dn.aliveMembers()
	for wi, w := range dn.sc.Workloads {
		for _, m := range members {
			if dn.mon.DeliveredCount(m.id, wi) < w.Messages {
				return false
			}
		}
	}
	for wi, w := range dn.sc.BlobWorkloads {
		for _, m := range members {
			if dn.mon.BlobDoneCount(m.id, wi) < w.Blobs {
				return false
			}
		}
	}
	return true
}

// shutdown closes the agent control connections; each agent then kills
// every worker that connection spawned.
func (dn *distNet) shutdown() {
	for _, a := range dn.agents {
		a.close()
	}
}

// Fail implements trace.Target: SIGKILL one random unprotected alive worker
// process through its agent — a real crash, mid-connection.
func (dn *distNet) Fail() {
	dn.mu.Lock()
	var cands []*distMember
	for _, m := range dn.members {
		if m.alive && !dn.protect[m.id] {
			cands = append(cands, m)
		}
	}
	if len(cands) == 0 {
		dn.mu.Unlock()
		return
	}
	victim := cands[dn.rng.Intn(len(cands))]
	victim.alive = false
	dn.mu.Unlock()
	// The kill response races nothing: the victim is already off the member
	// list, and the agent reaps the process.
	_, _ = victim.agent.call(dn.ctx, distCtrlReq{Op: "kill", Worker: victim.worker})
}

// Join implements trace.Target: spawn a fresh worker process at the next
// join index and bootstrap it through up to two random alive members. The
// worker runs the (bounded) bootstrap on its own goroutine so the churn
// schedule keeps pace.
func (dn *distNet) Join() {
	idx := dn.nextIndex()
	cfg := dn.sc.Topology.configFor(idx)
	if err := cfg.Validate(); err != nil {
		// A replay-time invalid PeerConfig is a bug in the caller's
		// derivation, as on the other runtimes.
		panic("brisa: churn join: " + err.Error())
	}
	dc, err := distConfigOf(cfg)
	if err != nil {
		panic("brisa: churn join: " + err.Error())
	}
	m, err := dn.spawnWith(idx, dc)
	if err != nil {
		// Spawning can fail under load; like a node that dies during
		// bootstrap, the join is lost.
		return
	}
	dn.mu.Lock()
	var contacts []string
	perm := dn.rng.Perm(len(dn.members))
	for _, i := range perm {
		c := dn.members[i]
		if c.alive && c != m {
			contacts = append(contacts, c.addr)
			if len(contacts) == 2 {
				break
			}
		}
	}
	dn.mu.Unlock()
	if len(contacts) == 0 {
		return
	}
	// Wait=false: the worker bootstraps asynchronously. A failed join
	// leaves the node isolated but alive; Connected surfaces it.
	_, _ = m.agent.workerCmd(dn.ctx, m.worker, distWorkerCmd{Op: "join", Contacts: contacts})
}

// Size implements trace.Target.
func (dn *distNet) Size() int { return len(dn.aliveMembers()) }

// Stop implements trace.Target.
func (dn *distNet) Stop() {}

// ---------------------------------------------------------------- fold

// fold populates the report from the collector's state: the shared
// collector structs are filled from the monitor stream and folded by the
// same streamReport/blobStreamReport code paths the other runtimes use.
// Survivors are ordered by (agent address, node id) — the sorted host/node
// discipline that keeps float summation order stable for a given
// measurement set.
func (dn *distNet) fold(sc Scenario, initial []*distMember, rep *Report, elapsed time.Duration,
	before, after map[NodeID]monitor.NodeMetrics) {
	survivors := dn.aliveMembers()
	sort.SliceStable(survivors, func(i, j int) bool {
		if survivors[i].agent.addr != survivors[j].agent.addr {
			return survivors[i].agent.addr < survivors[j].agent.addr
		}
		return survivors[i].id < survivors[j].id
	})
	col := newCollector(sc)
	for wi, w := range sc.Workloads {
		col.setSource(wi, initial[w.Source].id)
	}
	for wi, w := range sc.BlobWorkloads {
		col.setBlobSource(wi, initial[w.Source].id)
	}
	wantRepairs := sc.probed(ProbeRepairs)

	type streamPoll struct {
		snaps []peerSnapshot
	}
	type blobPoll struct {
		src   BlobStats
		snaps []blobSnap
	}
	streamPolls := make([]streamPoll, len(sc.Workloads))
	blobPolls := make([]blobPoll, len(sc.BlobWorkloads))
	var tr *TrafficReport

	dn.mon.View(func(nodes map[ids.NodeID]*monitor.NodeState, pubs map[int]map[uint32]int64, blobs map[int]map[uint32]monitor.BlobPublished) {
		for wi := range sc.Workloads {
			ws := col.ws[wi]
			for seq, at := range pubs[wi] {
				ws.pubAt[seq] = time.Unix(0, at)
			}
			ws.pubs = len(pubs[wi])
			for _, m := range survivors {
				ns := nodes[m.id]
				if ns == nil {
					continue
				}
				st := ns.Streams[wi]
				if st == nil {
					st = &monitor.StreamState{}
				}
				acc := &nodeAcc{dups: st.Dups}
				if m.id != ws.source {
					for _, s := range st.Samples {
						at := time.Unix(0, s.At)
						if acc.first.IsZero() {
							acc.first = at
						}
						acc.last = at
						if int(s.Seq) > ws.w.Warmup {
							if t0, ok := ws.pubAt[s.Seq]; ok {
								d := at.Sub(t0).Seconds()
								acc.record(d)
								ws.hist.Add(d)
							}
						}
					}
				}
				ws.accs[m.id] = acc
				snap := peerSnapshot{id: m.id}
				if ss := st.Snap; ss != nil {
					snap.delivered = ss.Delivered
					snap.orphan = ss.Orphan
					snap.parents = ss.Parents
					snap.depth = int(ss.Depth)
					snap.depthOK = ss.DepthOK
					snap.construction = time.Duration(ss.ConstructNanos)
					snap.constructOK = ss.ConstructOK
				}
				streamPolls[wi].snaps = append(streamPolls[wi].snaps, snap)
			}
		}
		for wi := range sc.BlobWorkloads {
			bs := col.bws[wi]
			ids := make([]uint32, 0, len(blobs[wi]))
			for id := range blobs[wi] {
				ids = append(ids, id)
			}
			sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
			for _, id := range ids {
				bp := blobs[wi][id]
				bs.hashes[id] = bp.Hash
				bs.bytes += int64(bp.Size)
			}
			bs.pubs = len(blobs[wi])
			srcID := bs.source
			for _, m := range survivors {
				ns := nodes[m.id]
				if ns == nil {
					continue
				}
				bst := ns.Blobs[wi]
				if bst == nil {
					bst = &monitor.BlobState{}
				}
				acc := &blobAcc{recs: make(map[uint32]blobRec)}
				for id, done := range bst.Done {
					lat := time.Duration(done.LatNanos).Seconds()
					rec := blobRec{hash: done.Hash, lat: lat}
					if lat > 0 {
						rec.mbps = float64(done.Bytes) / (1 << 20) / lat
					}
					acc.recs[id] = rec
				}
				bs.accs[m.id] = acc
				var st BlobStats
				if snap := bst.Snap; snap != nil {
					st = BlobStats{
						Published:      snap.Published,
						Delivered:      snap.Delivered,
						Dropped:        snap.Dropped,
						ChunksReceived: snap.ChunksReceived,
						ChunkDups:      snap.ChunkDups,
						ChunksPulled:   snap.ChunksPulled,
						ChunksServed:   snap.ChunksServed,
						WantsSent:      snap.WantsSent,
						ChunkBytesSent: snap.ChunkBytesSent,
					}
				}
				if m.id == srcID {
					blobPolls[wi].src = st
				}
				blobPolls[wi].snaps = append(blobPolls[wi].snaps, blobSnap{id: m.id, stats: st})
			}
		}
		if wantRepairs {
			for _, m := range survivors {
				ns := nodes[m.id]
				if ns == nil || len(ns.HardNanos) == 0 {
					continue
				}
				s := &stats.Sample{}
				for _, d := range ns.HardNanos {
					s.AddDuration(time.Duration(d))
				}
				col.hard[m.id] = s
			}
		}
		if sc.probed(ProbeTraffic) {
			tr = &TrafficReport{
				DownRate: &stats.Sample{},
				UpRate:   &stats.Sample{},
				Elapsed:  elapsed,
			}
			secs := elapsed.Seconds()
			var stab, diss uint64
			counted := 0
			for _, m := range survivors {
				if dn.protect[m.id] {
					continue // workload sources, as in the other folds
				}
				ns := nodes[m.id]
				if ns == nil || !ns.HasTraffic {
					continue
				}
				counted++
				delta := ns.Traffic.Sub(ns.TrafficBase)
				stab += ns.TrafficBase.BytesOut
				diss += delta.BytesOut
				if secs > 0 {
					tr.DownRate.Add(float64(delta.BytesIn) / 1024 / secs)
					tr.UpRate.Add(float64(delta.BytesOut) / 1024 / secs)
				}
			}
			if counted > 0 {
				tr.StabMB = float64(stab) / float64(counted) / (1 << 20)
				tr.DissMB = float64(diss) / float64(counted) / (1 << 20)
			}
		}
	})

	for wi := range sc.Workloads {
		rep.Streams = append(rep.Streams, col.streamReport(wi, streamPolls[wi].snaps))
	}
	for wi := range sc.BlobWorkloads {
		rep.Blobs = append(rep.Blobs, col.blobStreamReport(wi, blobPolls[wi].src, blobPolls[wi].snaps))
	}
	if tr != nil {
		rep.Traffic = tr
	}
	if sc.Churn != nil && wantRepairs {
		window, _ := sc.Churn.window()
		rep.Churn = distChurnReport(col, window, elapsed, before, after)
	}
}

// distChurnReport folds the bracketing metric snapshots into the shared
// ChurnReport shape, summing per-node deltas in sorted node order.
func distChurnReport(col *collector, window, elapsed time.Duration, before, after map[NodeID]monitor.NodeMetrics) *ChurnReport {
	minutes := window.Minutes()
	if minutes <= 0 {
		minutes = elapsed.Minutes()
	}
	cr := &ChurnReport{Window: window, HardDelays: col.hardRepairDelays()}
	var lost, orphans, soft, hardN float64
	for _, id := range sortedKeys(after) {
		a := after[id]
		b := before[id] // zero for nodes spawned after the bracket opened
		lost += float64(a.ParentsLost - b.ParentsLost)
		orphans += float64(a.Orphans - b.Orphans)
		soft += float64(a.SoftRepairs - b.SoftRepairs)
		hardN += float64(a.HardRepairs - b.HardRepairs)
	}
	if minutes > 0 {
		cr.ParentsLostPerMin = lost / minutes
		cr.OrphansPerMin = orphans / minutes
	}
	if soft+hardN > 0 {
		cr.SoftPct = 100 * soft / (soft + hardN)
		cr.HardPct = 100 * hardN / (soft + hardN)
	}
	return cr
}

// ---------------------------------------------------------------- agents

// distCtrlReq/distCtrlResp are the brisa-agent control protocol (JSON
// lines, pipelined by request id).
type distCtrlReq struct {
	ID     int64           `json:"id"`
	Op     string          `json:"op"`
	Spec   *DistWorkerSpec `json:"spec,omitempty"`
	Worker int             `json:"worker,omitempty"`
	Req    json.RawMessage `json:"req,omitempty"`
}

type distCtrlResp struct {
	ID     int64           `json:"id"`
	OK     bool            `json:"ok"`
	Err    string          `json:"err,omitempty"`
	Worker int             `json:"worker,omitempty"`
	Addr   string          `json:"addr,omitempty"`
	Node   string          `json:"node,omitempty"`
	Resp   json.RawMessage `json:"resp,omitempty"`
}

// agentConn is one control connection to a brisa-agent: requests carry
// correlation ids, a reader goroutine routes responses back to callers, so
// independent goroutines (publish pacing, churn, flush barriers) share it.
type agentConn struct {
	addr string
	conn net.Conn

	sendMu sync.Mutex
	mu     sync.Mutex
	next   int64
	pend   map[int64]chan distCtrlResp
	broken error
}

func dialAgent(addr string, timeout time.Duration) (*agentConn, error) {
	conn, err := net.DialTimeout("tcp", addr, timeout)
	if err != nil {
		return nil, fmt.Errorf("agent %s: %w", addr, err)
	}
	a := &agentConn{addr: addr, conn: conn, pend: make(map[int64]chan distCtrlResp)}
	go a.readLoop()
	return a, nil
}

func (a *agentConn) readLoop() {
	in := bufio.NewScanner(a.conn)
	in.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	for in.Scan() {
		var resp distCtrlResp
		if err := json.Unmarshal(in.Bytes(), &resp); err != nil {
			continue
		}
		a.mu.Lock()
		ch := a.pend[resp.ID]
		delete(a.pend, resp.ID)
		a.mu.Unlock()
		if ch != nil {
			ch <- resp
		}
	}
	err := in.Err()
	if err == nil {
		err = fmt.Errorf("agent %s: connection closed", a.addr)
	}
	a.mu.Lock()
	a.broken = err
	pend := a.pend
	a.pend = make(map[int64]chan distCtrlResp)
	a.mu.Unlock()
	for _, ch := range pend { //brisa:orderinvariant failing every pending call; order immaterial
		ch <- distCtrlResp{Err: err.Error()}
	}
}

// call sends one request and waits for its response.
func (a *agentConn) call(ctx context.Context, req distCtrlReq) (distCtrlResp, error) {
	ch := make(chan distCtrlResp, 1)
	a.mu.Lock()
	if a.broken != nil {
		err := a.broken
		a.mu.Unlock()
		return distCtrlResp{}, err
	}
	a.next++
	req.ID = a.next
	a.pend[req.ID] = ch
	a.mu.Unlock()

	raw, err := json.Marshal(req)
	if err != nil {
		return distCtrlResp{}, err
	}
	raw = append(raw, '\n')
	a.sendMu.Lock()
	_, err = a.conn.Write(raw)
	a.sendMu.Unlock()
	if err != nil {
		a.mu.Lock()
		delete(a.pend, req.ID)
		a.mu.Unlock()
		return distCtrlResp{}, fmt.Errorf("agent %s: %w", a.addr, err)
	}
	select {
	case resp := <-ch:
		if resp.Err != "" && !resp.OK {
			return resp, nil // protocol-level error, caller inspects
		}
		return resp, nil
	case <-ctx.Done():
		a.mu.Lock()
		delete(a.pend, req.ID)
		a.mu.Unlock()
		return distCtrlResp{}, ctx.Err()
	}
}

// workerCmd relays one command to a worker process through its agent and
// decodes the worker's response.
func (a *agentConn) workerCmd(ctx context.Context, worker int, cmd distWorkerCmd) (distWorkerResp, error) {
	raw, err := json.Marshal(cmd)
	if err != nil {
		return distWorkerResp{}, err
	}
	resp, err := a.call(ctx, distCtrlReq{Op: "cmd", Worker: worker, Req: raw})
	if err != nil {
		return distWorkerResp{}, err
	}
	if !resp.OK {
		return distWorkerResp{}, fmt.Errorf("agent %s: %s", a.addr, resp.Err)
	}
	var wr distWorkerResp
	if err := json.Unmarshal(resp.Resp, &wr); err != nil {
		return distWorkerResp{}, fmt.Errorf("agent %s: bad worker response: %w", a.addr, err)
	}
	return wr, nil
}

func (a *agentConn) close() {
	a.conn.Close()
}
