package brisa_test

// The sequential-vs-sharded equivalence harness — the contract that lets the
// multi-core scheduler evolve without silently diverging from the engine the
// paper reproductions were validated on.
//
// The sharded scheduler (internal/simnet, Workers > 1) was designed so that
// the simulation outcome is a pure function of (seed, workload),
// independent of the worker count: events are ordered by a key that no
// execution interleaving can change, latency draws are per-sender streams
// rather than a global RNG, and conservative lookahead windows keep shards
// from ever observing each other mid-window. The harness enforces the
// strongest checkable form of that claim: every golden scenario's full
// Report JSON — the deterministic probes (reliability, delivered counts,
// structure, traffic, repair counts) and the timing distributions
// (latency/spread/duplicate percentiles) alike — must be byte-identical on
// 1, 2 and 8 workers. Identical distributions subsume the "statistically
// bounded agreement" a looser parallel engine would settle for.
//
// The engine-level half of the harness lives in internal/simnet
// (TestShardedEquivalence), pinning raw transcripts: every delivery,
// connection event and timestamp.

import (
	"bytes"
	"fmt"
	"testing"
	"time"

	brisa "repro"
)

// equivalenceWorkerCounts are the sharded configurations checked against
// the sequential engine. 8 intentionally exceeds this machine's core count
// and the shard count stays correct regardless of parallel hardware.
var equivalenceWorkerCounts = []int{2, 8}

// TestEngineEquivalence runs every golden scenario on the sequential engine
// and on each sharded configuration, requiring byte-identical Reports.
func TestEngineEquivalence(t *testing.T) {
	for _, gc := range goldenCases() {
		gc := gc
		t.Run(gc.name, func(t *testing.T) {
			want := runGolden(t, gc.sc, 1)
			for _, workers := range equivalenceWorkerCounts {
				got := runGolden(t, gc.sc, workers)
				if !bytes.Equal(got, want) {
					t.Errorf("workers=%d diverged from the sequential engine\nsequential:\n%s\nworkers=%d:\n%s",
						workers, want, workers, got)
				}
			}
		})
	}
}

// TestEquivalenceForcedParallel re-runs the multistream golden with the
// inline-window optimization disabled (every multi-shard window fans out to
// worker goroutines), so the cross-goroutine code path is exercised at the
// full protocol stack — and, in CI, under -race. A scenario this small
// would otherwise mostly run inline.
func TestEquivalenceForcedParallel(t *testing.T) {
	gc := goldenCases()[1]
	want := runGolden(t, gc.sc, 1)

	cfg := brisa.ClusterConfig{
		Nodes:             gc.sc.Topology.Nodes,
		Peer:              gc.sc.Topology.Peer,
		Seed:              gc.sc.Seed,
		Workers:           4,
		ParallelThreshold: -1,
	}
	c, err := brisa.NewCluster(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if got := c.Workers(); got != 4 {
		t.Fatalf("cluster Workers() = %d, want 4", got)
	}
	rep, err := brisa.Run(nil, brisa.SimRuntime{Cluster: c}, gc.sc)
	if err != nil {
		t.Fatal(err)
	}
	if got := normalizeReport(t, rep); !bytes.Equal(got, want) {
		t.Errorf("forced-parallel run diverged from the sequential engine\nsequential:\n%s\nparallel:\n%s", want, got)
	}
}

// TestEquivalenceAcrossChunking pins a property the scenario runner relies
// on: the sharded scheduler's window structure follows RunUntil deadlines,
// and results must not depend on how virtual time is sliced into RunFor
// chunks (the runner advances in 1s chunks to observe context
// cancellation).
func TestEquivalenceAcrossChunking(t *testing.T) {
	run := func(workers int, chunk time.Duration) string {
		c, err := brisa.NewCluster(brisa.ClusterConfig{
			Nodes: 32, Seed: 3,
			Peer:    brisa.Config{Mode: brisa.ModeTree, ViewSize: 4},
			Workers: workers,
		})
		if err != nil {
			t.Fatal(err)
		}
		defer c.Close()
		c.Bootstrap()
		src := c.Peers()[0]
		for i := 0; i < 20; i++ {
			c.Net.After(time.Duration(i)*100*time.Millisecond, func() {
				src.Publish(1, []byte("chunked"))
			})
		}
		total := 10 * time.Second
		for ran := time.Duration(0); ran < total; ran += chunk {
			step := chunk
			if rem := total - ran; rem < step {
				step = rem
			}
			c.Net.RunFor(step)
		}
		out := ""
		for _, p := range c.AlivePeers() {
			out += fmt.Sprintf("%v=%d/%v;", p.ID(), p.DeliveredCount(1), p.Parents(1))
		}
		return out
	}
	want := run(1, 10*time.Second)
	for _, workers := range []int{1, 2, 8} {
		for _, chunk := range []time.Duration{77 * time.Millisecond, time.Second, 10 * time.Second} {
			if got := run(workers, chunk); got != want {
				t.Fatalf("workers=%d chunk=%v diverged:\nwant %s\ngot  %s", workers, chunk, want, got)
			}
		}
	}
}
