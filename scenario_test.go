package brisa_test

// Scenario runner tests: the declarative API must express multi-stream,
// multi-source experiments as data and execute them identically on both
// runtimes.

import (
	"encoding/json"
	"testing"
	"time"

	brisa "repro"
)

// twoByTwo is the acceptance scenario: two concurrent streams from two
// distinct sources.
func twoByTwo(nodes, msgs int) brisa.Scenario {
	return brisa.Scenario{
		Name: "2 streams x 2 sources",
		Seed: 7,
		Topology: brisa.Topology{
			Nodes: nodes,
			Peer:  brisa.Config{Mode: brisa.ModeTree, ViewSize: 4},
		},
		Workloads: []brisa.Workload{
			{Stream: 1, Source: 0, Messages: msgs, Payload: 256, Interval: 100 * time.Millisecond},
			{Stream: 2, Source: 1, Messages: msgs, Payload: 256, Interval: 100 * time.Millisecond},
		},
		Probes: []brisa.Probe{brisa.ProbeLatency, brisa.ProbeDuplicates, brisa.ProbeStructure},
	}
}

func TestScenarioSimMultiStreamMultiSource(t *testing.T) {
	t.Parallel()
	rep, err := brisa.RunSim(twoByTwo(48, 20))
	if err != nil {
		t.Fatalf("RunSim: %v", err)
	}
	if rep.Runtime != "sim" {
		t.Errorf("runtime = %q, want sim", rep.Runtime)
	}
	if len(rep.Streams) != 2 {
		t.Fatalf("want 2 stream reports, got %d", len(rep.Streams))
	}
	for _, s := range rep.Streams {
		if s.Published != 20 {
			t.Errorf("stream %d: published %d, want 20", s.Stream, s.Published)
		}
		if s.Reliability != 1 {
			t.Errorf("stream %d: reliability %.3f, want 1.0", s.Stream, s.Reliability)
		}
		if s.Delays == nil || s.Delays.Len() == 0 {
			t.Errorf("stream %d: no delay samples", s.Stream)
		}
		if s.Depths == nil || s.Depths.Total() == 0 {
			t.Errorf("stream %d: no depth histogram", s.Stream)
		}
	}
	// Distinct sources: the two streams emerge from different roots.
	if rep.Streams[0].Source == rep.Streams[1].Source {
		t.Errorf("both streams report source %v", rep.Streams[0].Source)
	}
	// The report renders and serializes.
	if rep.String() == "" {
		t.Error("empty report rendering")
	}
	raw, err := json.Marshal(rep)
	if err != nil {
		t.Fatalf("report JSON: %v", err)
	}
	var decoded struct {
		Streams []struct {
			Reliability float64 `json:"reliability"`
		} `json:"streams"`
	}
	if err := json.Unmarshal(raw, &decoded); err != nil {
		t.Fatalf("report JSON round trip: %v", err)
	}
	if len(decoded.Streams) != 2 || decoded.Streams[0].Reliability != 1 {
		t.Errorf("JSON shape off: %s", raw)
	}
}

func TestScenarioLiveMultiStreamMultiSource(t *testing.T) {
	sc := twoByTwo(6, 10)
	sc.Workloads[0].Interval = 20 * time.Millisecond
	sc.Workloads[1].Interval = 20 * time.Millisecond
	sc.Drain = 5 * time.Second
	rep, err := brisa.RunLive(sc)
	if err != nil {
		t.Fatalf("RunLive: %v", err)
	}
	if rep.Runtime != "live" {
		t.Errorf("runtime = %q, want live", rep.Runtime)
	}
	if len(rep.Streams) != 2 {
		t.Fatalf("want 2 stream reports, got %d", len(rep.Streams))
	}
	for _, s := range rep.Streams {
		if s.Reliability != 1 {
			t.Errorf("stream %d: reliability %.3f, want 1.0 (connected %.3f)",
				s.Stream, s.Reliability, s.Connected)
		}
		if s.Delays == nil || s.Delays.Len() == 0 {
			t.Errorf("stream %d: no delay samples", s.Stream)
		}
	}
}

func TestScenarioValidation(t *testing.T) {
	t.Parallel()
	top := brisa.Topology{Nodes: 8, Peer: brisa.Config{Mode: brisa.ModeTree}}
	bad := []brisa.Scenario{
		{Topology: top}, // no workloads
		{Topology: top, Workloads: []brisa.Workload{{Stream: 1}, {Stream: 1, Source: 1}}}, // duplicate stream
		{Topology: top, Workloads: []brisa.Workload{{Stream: 1, Source: 9}}},              // source out of range
		{Topology: top, Workloads: []brisa.Workload{{Stream: 1, Messages: -1}}},           // negative count
		{Topology: top, Workloads: []brisa.Workload{{Stream: 1}}, Churn: &brisa.Churn{Script: "nonsense"}},
		{Topology: brisa.Topology{Nodes: 0}, Workloads: []brisa.Workload{{Stream: 1}}}, // empty topology
	}
	for i, sc := range bad {
		if _, err := brisa.RunSim(sc); err == nil {
			t.Errorf("case %d: RunSim accepted %+v", i, sc)
		}
	}
}

// TestScenarioValidateErrors pins Validate's error paths one by one: bad
// topology sizes, zero-rate workload timings, conflicting churn bounds.
// Each case must fail without running anything.
func TestScenarioValidateErrors(t *testing.T) {
	t.Parallel()
	ok := brisa.Scenario{
		Topology:  brisa.Topology{Nodes: 8, Peer: brisa.Config{Mode: brisa.ModeTree}},
		Workloads: []brisa.Workload{{Stream: 1, Messages: 1}},
	}
	if err := ok.Validate(); err != nil {
		t.Fatalf("baseline scenario invalid: %v", err)
	}
	cases := []struct {
		name   string
		mutate func(*brisa.Scenario)
	}{
		{"negative nodes", func(sc *brisa.Scenario) { sc.Topology.Nodes = -4 }},
		{"negative node bandwidth", func(sc *brisa.Scenario) { sc.Topology.NodeBandwidth = -1 }},
		{"negative link bandwidth", func(sc *brisa.Scenario) { sc.Topology.LinkBandwidth = -1 }},
		{"negative join interval", func(sc *brisa.Scenario) { sc.Topology.JoinInterval = -time.Second }},
		{"negative stabilize time", func(sc *brisa.Scenario) { sc.Topology.StabilizeTime = -time.Second }},
		{"invalid peer config", func(sc *brisa.Scenario) { sc.Topology.Peer = brisa.Config{Parents: -1} }},
		{"negative payload", func(sc *brisa.Scenario) { sc.Workloads[0].Payload = -1 }},
		{"negative interval (zero-rate)", func(sc *brisa.Scenario) { sc.Workloads[0].Interval = -time.Second }},
		{"negative start", func(sc *brisa.Scenario) { sc.Workloads[0].Start = -time.Second }},
		{"negative drain", func(sc *brisa.Scenario) { sc.Drain = -time.Second }},
		{"churn window ends before it starts", func(sc *brisa.Scenario) {
			sc.Churn = &brisa.Churn{Script: "from 10s to 5s const churn 3% each 1s"}
		}},
		{"churn bad percentage", func(sc *brisa.Scenario) {
			sc.Churn = &brisa.Churn{Script: "from 0s to 5s const churn oops% each 1s"}
		}},
		{"churn zero interval", func(sc *brisa.Scenario) {
			sc.Churn = &brisa.Churn{Script: "from 0s to 5s const churn 3% each 0s"}
		}},
		{"fault loss probability 1", func(sc *brisa.Scenario) {
			sc.Faults = &brisa.FaultModel{Loss: 1}
		}},
		{"fault negative duplicate probability", func(sc *brisa.Scenario) {
			sc.Faults = &brisa.FaultModel{Duplicate: -0.1}
		}},
		{"fault reorder probability above 1", func(sc *brisa.Scenario) {
			sc.Faults = &brisa.FaultModel{Reorder: 1.5}
		}},
		{"fault empty partition window", func(sc *brisa.Scenario) {
			sc.Faults = &brisa.FaultModel{Partitions: []brisa.Partition{
				{Start: time.Second, End: time.Second, Fraction: 0.5},
			}}
		}},
		{"fault partition fraction out of range", func(sc *brisa.Scenario) {
			sc.Faults = &brisa.FaultModel{Partitions: []brisa.Partition{
				{Start: 0, End: time.Second, Fraction: 1},
			}}
		}},
		{"fault partition window past scenario end", func(sc *brisa.Scenario) {
			sc.Faults = &brisa.FaultModel{Partitions: []brisa.Partition{
				{Start: 0, End: 240 * time.Hour, Fraction: 0.5},
			}}
		}},
		{"fault buffer capacity zero", func(sc *brisa.Scenario) {
			sc.Faults = &brisa.FaultModel{Buffer: &brisa.BufferModel{Capacity: 0}}
		}},
		{"fault unknown drop policy", func(sc *brisa.Scenario) {
			sc.Faults = &brisa.FaultModel{Buffer: &brisa.BufferModel{Capacity: 8, Policy: brisa.DropPolicy(9)}}
		}},
	}
	for _, tc := range cases {
		sc := ok
		sc.Workloads = append([]brisa.Workload(nil), ok.Workloads...)
		tc.mutate(&sc)
		if err := sc.Validate(); err == nil {
			t.Errorf("%s: Validate accepted the scenario", tc.name)
		}
	}
}

func TestScenarioChurnReport(t *testing.T) {
	t.Parallel()
	rep, err := brisa.RunSim(brisa.Scenario{
		Name: "churn smoke",
		Seed: 3,
		Topology: brisa.Topology{
			Nodes: 48,
			Peer:  brisa.Config{Mode: brisa.ModeTree, ViewSize: 4},
		},
		Workloads: []brisa.Workload{
			{Stream: 1, Messages: 700, Payload: 256}, // covers the churn window at 5/s
		},
		Churn:  &brisa.Churn{Script: "from 0s to 120s const churn 5% each 30s", Start: 10 * time.Second},
		Probes: []brisa.Probe{brisa.ProbeRepairs},
		Drain:  30 * time.Second,
	})
	if err != nil {
		t.Fatalf("RunSim: %v", err)
	}
	if rep.Churn == nil {
		t.Fatal("no churn report despite ProbeRepairs")
	}
	if rep.Churn.Window != 120*time.Second {
		t.Errorf("window = %v, want 2m", rep.Churn.Window)
	}
	if rep.Churn.ParentsLostPerMin <= 0 {
		t.Errorf("parents lost/min = %v, want > 0 under 5%% churn", rep.Churn.ParentsLostPerMin)
	}
	s := rep.Stream(1)
	if s == nil {
		t.Fatal("stream 1 missing")
	}
	if s.Connected != 1 {
		t.Errorf("connected = %.3f, want 1.0 (survivors must stay fed)", s.Connected)
	}
}

func TestScenarioClusterReuse(t *testing.T) {
	t.Parallel()
	// A hand-built cluster with a zero Topology, run twice on the same
	// stream: reporting is relative to the state at entry, so both runs —
	// and a traffic probe on the second — stay correct.
	c := newTestCluster(t, brisa.ClusterConfig{
		Nodes: 24,
		Seed:  13,
		Peer:  brisa.Config{Mode: brisa.ModeTree, ViewSize: 4},
	})
	sc := brisa.Scenario{
		Name:      "reuse",
		Workloads: []brisa.Workload{{Stream: 1, Messages: 10, Payload: 128}},
		Probes:    []brisa.Probe{brisa.ProbeLatency, brisa.ProbeTraffic},
	}
	first, err := c.Run(sc)
	if err != nil {
		t.Fatalf("first Run: %v", err)
	}
	second, err := c.Run(sc)
	if err != nil {
		t.Fatalf("second Run: %v", err)
	}
	for i, rep := range []*brisa.Report{first, second} {
		s := rep.Stream(1)
		if s.Published != 10 {
			t.Errorf("run %d: published %d, want 10", i, s.Published)
		}
		if s.Reliability != 1 {
			t.Errorf("run %d: reliability %.3f, want 1.0", i, s.Reliability)
		}
	}
	// The second run must not fold the first run's bytes into its rates.
	r1, r2 := first.Traffic.UpRate.Mean(), second.Traffic.UpRate.Mean()
	if r2 > 3*r1 {
		t.Errorf("second run's traffic rates inflated by the first: %.2f vs %.2f KB/s", r2, r1)
	}
}

func TestScenarioOnExistingCluster(t *testing.T) {
	t.Parallel()
	sc := brisa.Scenario{
		Name:     "hand-built cluster",
		Seed:     5,
		Topology: brisa.Topology{Nodes: 24, Peer: brisa.Config{Mode: brisa.ModeDAG, ViewSize: 4}},
		Workloads: []brisa.Workload{
			{Stream: 9, Messages: 10, Payload: 64},
		},
	}
	c, err := sc.NewCluster()
	if err != nil {
		t.Fatalf("NewCluster: %v", err)
	}
	c.Bootstrap() // Run must not bootstrap twice
	rep, err := c.Run(sc)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if got := rep.Stream(9); got == nil || got.Reliability != 1 {
		t.Fatalf("stream 9 report: %+v", got)
	}
}
