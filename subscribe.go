package brisa

import "sync"

// Message is one delivered payload of a stream, as seen by a Subscription.
type Message struct {
	// Stream names the dissemination stream the payload belongs to.
	Stream StreamID
	// Seq is the source-assigned sequence number (starting at 1).
	Seq uint32
	// Payload is the message body.
	Payload []byte
}

// Subscription delivers one stream's messages over a channel. It works
// identically on both runtimes: the protocol side enqueues deliveries
// without ever blocking (the queue is unbounded), and a pump goroutine
// feeds them to C in delivery order.
//
// Cancel when done; C is closed afterwards. Closing the live Node that owns
// the peer cancels its subscriptions too.
type Subscription struct {
	stream StreamID
	out    chan Message

	mu    sync.Mutex
	queue []Message

	wake  chan struct{} // 1-buffered doorbell: queue went non-empty
	done  chan struct{}
	once  sync.Once
	unsub func()
}

// Subscribe registers a subscription for every future delivery of the
// stream, local publishes included. Multiple subscriptions per stream are
// independent; each receives every message once, in delivery order. Safe to
// call from any goroutine on either runtime.
func (p *Peer) Subscribe(stream StreamID) *Subscription {
	s := &Subscription{
		stream: stream,
		out:    make(chan Message, 16),
		wake:   make(chan struct{}, 1),
		done:   make(chan struct{}),
	}
	cancelCore := p.brisa.SubscribeFn(stream, func(seq uint32, payload []byte) {
		s.push(Message{Stream: stream, Seq: seq, Payload: payload})
	})
	p.subs.add(s)
	s.unsub = func() {
		cancelCore()
		p.subs.remove(s)
	}
	go s.pump()
	return s
}

// C returns the delivery channel. It is closed after Cancel.
func (s *Subscription) C() <-chan Message { return s.out }

// Stream returns the stream this subscription follows.
func (s *Subscription) Stream() StreamID { return s.stream }

// Cancel stops delivery, unregisters the subscription, and closes C. It is
// idempotent and safe to call from any goroutine.
func (s *Subscription) Cancel() {
	s.once.Do(func() {
		s.unsub()
		close(s.done)
	})
}

// push appends a delivery; called from the protocol side. Never blocks.
func (s *Subscription) push(m Message) {
	s.mu.Lock()
	select {
	case <-s.done:
		s.mu.Unlock()
		return
	default:
	}
	s.queue = append(s.queue, m)
	s.mu.Unlock()
	select {
	case s.wake <- struct{}{}:
	default:
	}
}

// pump moves queued deliveries to the out channel until cancelled.
func (s *Subscription) pump() {
	defer close(s.out)
	for {
		s.mu.Lock()
		var m Message
		ok := len(s.queue) > 0
		if ok {
			m = s.queue[0]
			s.queue = s.queue[1:]
			if len(s.queue) == 0 {
				s.queue = nil // release the drained backing array
			}
		}
		s.mu.Unlock()
		if !ok {
			select {
			case <-s.wake:
				continue
			case <-s.done:
				return
			}
		}
		select {
		case s.out <- m:
		case <-s.done:
			return
		}
	}
}

// subscriptionSet tracks a peer's live subscriptions so the owning runtime
// can cancel them all on shutdown.
type subscriptionSet struct {
	mu   sync.Mutex
	subs map[*Subscription]struct{}
}

func (set *subscriptionSet) add(s *Subscription) {
	set.mu.Lock()
	if set.subs == nil {
		set.subs = make(map[*Subscription]struct{})
	}
	set.subs[s] = struct{}{}
	set.mu.Unlock()
}

func (set *subscriptionSet) remove(s *Subscription) {
	set.mu.Lock()
	delete(set.subs, s)
	set.mu.Unlock()
}

// cancelAll cancels every live subscription of the set.
func (set *subscriptionSet) cancelAll() {
	set.mu.Lock()
	subs := make([]*Subscription, 0, len(set.subs))
	for s := range set.subs {
		subs = append(subs, s)
	}
	set.mu.Unlock()
	for _, s := range subs {
		s.Cancel()
	}
}
