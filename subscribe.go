package brisa

import (
	"sync"

	"repro/internal/core"
)

// Message is one delivered payload of a stream, as seen by a Subscription.
type Message struct {
	// Stream names the dissemination stream the payload belongs to.
	Stream StreamID
	// Seq is the source-assigned sequence number (starting at 1).
	Seq uint32
	// Payload is the message body.
	Payload []byte
}

// OverflowPolicy selects what a bounded subscription does when its queue is
// full (see SubOptions).
type OverflowPolicy int

const (
	// DropOldest discards the oldest queued delivery to admit the new one;
	// Dropped counts the losses. The default policy: a slow consumer lags
	// but never stalls the protocol.
	DropOldest OverflowPolicy = iota
	// Block makes the delivering side wait until the consumer drains. This
	// is real back-pressure: on a live node it stalls the node's actor (the
	// peer stops processing protocol messages), and on the simulator it
	// pauses virtual time. Use it only when the consumer is guaranteed to
	// keep reading.
	Block
)

// SubOptions bounds a subscription's delivery queue.
type SubOptions struct {
	// Limit caps the queued, not-yet-consumed deliveries. 0 means
	// unbounded (the Subscribe default).
	Limit int
	// OnFull picks the policy when Limit is reached.
	OnFull OverflowPolicy
}

// Subscription delivers one stream's messages over a channel. It works
// identically on both runtimes: the protocol side enqueues deliveries
// (without blocking, unless a Block-policy bound says otherwise) and a pump
// goroutine feeds them to C in delivery order.
//
// Cancel when done; C is closed afterwards. Closing the live Node that owns
// the peer cancels its subscriptions too.
type Subscription struct {
	stream StreamID
	out    chan Message

	mu      sync.Mutex
	queue   []Message
	limit   int
	policy  OverflowPolicy
	dropped uint64
	space   *sync.Cond // non-nil for Block policy: queue below limit

	wake  chan struct{} // 1-buffered doorbell: queue went non-empty
	done  chan struct{}
	once  sync.Once
	unsub func()
}

// Subscribe registers a subscription for every future delivery of the
// stream, local publishes included. Multiple subscriptions per stream are
// independent; each receives every message once, in delivery order. Safe to
// call from any goroutine on either runtime. The queue is unbounded; use
// SubscribeOpts to bound it.
func (p *Peer) Subscribe(stream StreamID) *Subscription {
	return p.SubscribeOpts(stream, SubOptions{})
}

// SubscribeOpts is Subscribe with a bounded delivery queue, for consumers
// that may fall behind heavy traffic: at most Limit deliveries wait
// unconsumed, and OnFull picks whether overflow drops the oldest (counted
// by Dropped) or blocks the deliverer.
func (p *Peer) SubscribeOpts(stream StreamID, opts SubOptions) *Subscription {
	s := &Subscription{
		stream: stream,
		out:    make(chan Message, 16),
		limit:  opts.Limit,
		policy: opts.OnFull,
		wake:   make(chan struct{}, 1),
		done:   make(chan struct{}),
	}
	if s.limit > 0 && s.policy == Block {
		s.space = sync.NewCond(&s.mu)
	}
	cancelCore := p.brisa.SubscribeFn(stream, func(seq uint32, payload []byte) {
		s.push(Message{Stream: stream, Seq: seq, Payload: payload})
	})
	p.subs.add(s)
	s.unsub = func() {
		cancelCore()
		p.subs.remove(s)
	}
	go s.pump()
	return s
}

// C returns the delivery channel. It is closed after Cancel.
func (s *Subscription) C() <-chan Message { return s.out }

// Stream returns the stream this subscription follows.
func (s *Subscription) Stream() StreamID { return s.stream }

// Cancel stops delivery, unregisters the subscription, and closes C. It is
// idempotent and safe to call from any goroutine. A deliverer blocked by a
// Block-policy bound is released.
func (s *Subscription) Cancel() {
	s.once.Do(func() {
		s.unsub()
		close(s.done)
		if s.space != nil {
			s.mu.Lock()
			s.space.Broadcast()
			s.mu.Unlock()
		}
	})
}

// Dropped returns how many deliveries a DropOldest bound discarded.
func (s *Subscription) Dropped() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.dropped
}

// push appends a delivery; called from the protocol side. It never blocks
// unless the subscription is bounded with the Block policy.
func (s *Subscription) push(m Message) {
	s.mu.Lock()
	for {
		select {
		case <-s.done:
			s.mu.Unlock()
			return
		default:
		}
		if s.limit <= 0 || len(s.queue) < s.limit {
			break
		}
		if s.policy == DropOldest {
			s.queue = s.queue[1:]
			s.dropped++
			break
		}
		s.space.Wait() // Block: woken by the pump or by Cancel
	}
	s.queue = append(s.queue, m)
	s.mu.Unlock()
	select {
	case s.wake <- struct{}{}:
	default:
	}
}

// pump moves queued deliveries to the out channel until cancelled.
func (s *Subscription) pump() {
	defer close(s.out)
	for {
		s.mu.Lock()
		var m Message
		ok := len(s.queue) > 0
		if ok {
			m = s.queue[0]
			s.queue = s.queue[1:]
			if len(s.queue) == 0 {
				s.queue = nil // release the drained backing array
			}
			if s.space != nil {
				s.space.Signal()
			}
		}
		s.mu.Unlock()
		if !ok {
			select {
			case <-s.wake:
				continue
			case <-s.done:
				return
			}
		}
		select {
		case s.out <- m:
		case <-s.done:
			return
		}
	}
}

// subscriptionSet tracks a peer's live subscriptions (message and blob) so
// the owning runtime can cancel them all on shutdown.
type subscriptionSet struct {
	mu   sync.Mutex
	subs map[canceler]struct{}
}

// canceler is anything cancelAll can shut down.
type canceler interface{ Cancel() }

func (set *subscriptionSet) add(s canceler) {
	set.mu.Lock()
	if set.subs == nil {
		set.subs = make(map[canceler]struct{})
	}
	set.subs[s] = struct{}{}
	set.mu.Unlock()
}

func (set *subscriptionSet) remove(s canceler) {
	set.mu.Lock()
	delete(set.subs, s)
	set.mu.Unlock()
}

// cancelAll cancels every live subscription of the set.
func (set *subscriptionSet) cancelAll() {
	set.mu.Lock()
	subs := make([]canceler, 0, len(set.subs))
	for s := range set.subs {
		subs = append(subs, s)
	}
	set.mu.Unlock()
	for _, s := range subs {
		s.Cancel()
	}
}

// ---------------------------------------------------------------- blobs

// Blob is one reassembled large payload, as seen by a BlobSubscription.
type Blob struct {
	// Stream names the dissemination stream the blob belongs to.
	Stream StreamID
	// ID is the source-assigned per-stream blob id (starting at 1).
	ID uint32
	// Data is the reconstructed payload, byte-identical to what the source
	// published. Consumers must not modify it.
	Data []byte
}

// BlobSubscription delivers one stream's reassembled blobs over a channel,
// in completion order. The queue is unbounded: blobs are few and large, so
// back-pressure belongs to the consumer. Cancel when done; C is closed
// afterwards.
type BlobSubscription struct {
	stream StreamID
	out    chan Blob

	mu    sync.Mutex
	queue []Blob

	wake  chan struct{}
	done  chan struct{}
	once  sync.Once
	unsub func()
}

// SubscribeBlobs registers a subscription for every blob the peer completes
// on the stream — local PublishBlob calls included. Multiple subscriptions
// are independent; each receives every blob once. Safe to call from any
// goroutine on either runtime.
func (p *Peer) SubscribeBlobs(stream StreamID) *BlobSubscription {
	s := &BlobSubscription{
		stream: stream,
		out:    make(chan Blob, 1),
		wake:   make(chan struct{}, 1),
		done:   make(chan struct{}),
	}
	cancelCore := p.brisa.SubscribeBlobFn(stream, func(d core.BlobDelivery) {
		s.push(Blob{Stream: stream, ID: d.ID, Data: d.Data})
	})
	p.subs.add(s)
	s.unsub = func() {
		cancelCore()
		p.subs.remove(s)
	}
	go s.pump()
	return s
}

// C returns the delivery channel. It is closed after Cancel.
func (s *BlobSubscription) C() <-chan Blob { return s.out }

// Stream returns the stream this subscription follows.
func (s *BlobSubscription) Stream() StreamID { return s.stream }

// Cancel stops delivery, unregisters the subscription, and closes C. It is
// idempotent and safe to call from any goroutine.
func (s *BlobSubscription) Cancel() {
	s.once.Do(func() {
		s.unsub()
		close(s.done)
	})
}

// push appends a completed blob; called from the protocol side, never
// blocking.
func (s *BlobSubscription) push(b Blob) {
	s.mu.Lock()
	select {
	case <-s.done:
		s.mu.Unlock()
		return
	default:
	}
	s.queue = append(s.queue, b)
	s.mu.Unlock()
	select {
	case s.wake <- struct{}{}:
	default:
	}
}

// pump moves queued blobs to the out channel until cancelled.
func (s *BlobSubscription) pump() {
	defer close(s.out)
	for {
		s.mu.Lock()
		var b Blob
		ok := len(s.queue) > 0
		if ok {
			b = s.queue[0]
			s.queue = s.queue[1:]
			if len(s.queue) == 0 {
				s.queue = nil
			}
		}
		s.mu.Unlock()
		if !ok {
			select {
			case <-s.wake:
				continue
			case <-s.done:
				return
			}
		}
		select {
		case s.out <- b:
		case <-s.done:
			return
		}
	}
}
