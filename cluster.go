package brisa

import (
	"fmt"
	"math/rand"
	"time"

	"repro/internal/simnet"
	"repro/internal/trace"
)

// ClusterConfig describes a simulated deployment.
type ClusterConfig struct {
	// Nodes is the network size.
	Nodes int
	// Peer configures every peer (OnDeliver/OnEvent are shared; wrap them
	// if per-peer state is needed — callbacks receive no peer argument by
	// design, use PeerConfig instead for that).
	Peer Config
	// PeerConfig, when set, derives a per-peer configuration from the
	// peer's identifier (overrides Peer). Simulator-specific: ids are
	// known up front here. Scenario code should prefer the id-independent
	// PeerConfigAt, which Topology.PeerConfig lowers onto.
	PeerConfig func(id NodeID) Config
	// PeerConfigAt, when set, derives a per-peer configuration from the
	// peer's 0-based creation index, churned-in peers continuing the count
	// (overrides Peer and PeerConfig) — the derivation shared with the
	// live runtime, where identifiers are unknown before the sockets bind.
	PeerConfigAt func(i int) Config
	// Seed drives all simulation randomness (default 1).
	Seed int64
	// Latency is the network latency model (default ClusterLatency()).
	Latency LatencyModel
	// JoinInterval staggers the bootstrap joins (default 50ms). The
	// paper's traces join one node per second; experiments compress this.
	JoinInterval time.Duration
	// StabilizeTime is how long Bootstrap runs after the last join
	// (default 15s of virtual time).
	StabilizeTime time.Duration
	// DetectDelay overrides the failure-detection latency.
	DetectDelay time.Duration
	// NodeBandwidth is each node's shared egress throughput in
	// bytes/second (0 = infinite). Floods queue behind it, as on real
	// testbeds.
	NodeBandwidth int64
	// LinkBandwidth is the per-link throughput in bytes/second (0 =
	// infinite).
	LinkBandwidth int64
	// ProcessingDelay, when set, adds per-message scheduling delay at
	// receivers (see simnet.LogNormalDelay).
	ProcessingDelay func(r *rand.Rand) time.Duration
	// Faults, when set, injects deterministic network faults once the
	// dissemination phase starts (see FaultModel). Buffer drops surface to
	// the affected peer's OnEvent as EvMsgDropped.
	Faults *FaultModel
	// Workers is the number of scheduler shards the simulator partitions
	// node actors across. Zero (the default) picks one shard per CPU,
	// capped at the scheduler's shard limit; 1 forces the sequential
	// engine. With more than one shard the conservative safe-time
	// scheduler runs shards on worker goroutines; results are
	// byte-identical for every worker count, but shared instrumentation
	// callbacks (Peer OnDeliver/OnEvent) then run concurrently and must
	// be thread-safe. Requires a Latency model with a positive minimum
	// delay (all built-in models qualify); otherwise the engine silently
	// degrades to 1 worker. Call Cluster.Close when done to release the
	// worker goroutines.
	Workers int
	// ParallelThreshold tunes when the sharded scheduler fans a window out
	// to worker goroutines instead of running it inline (see
	// simnet.Options.ParallelThreshold; tests use -1 to force fan-out).
	ParallelThreshold int
}

// Cluster is a simulated BRISA deployment: N peers on a virtual network.
type Cluster struct {
	// Net is the underlying simulator; use it to advance virtual time,
	// schedule workload events, inject churn, and read traffic counters.
	Net   *simnet.Network
	cfg   ClusterConfig
	peers map[NodeID]*Peer
	order []NodeID
	next  uint64

	bootstrapped bool
	// onAddPeer, when set by the scenario runner, instruments peers that
	// join after the run started (churn joiners).
	onAddPeer func(*Peer)

	// dropSinks routes simulated buffer drops to each peer's OnEvent as
	// EvMsgDropped. Written only in driver context (addPeer runs before the
	// simulation or inside barrier events); read on shard goroutines, which
	// the scheduler's span handoff orders after every barrier write.
	dropSinks map[NodeID]func(Event)
}

// Validate checks the configuration. Zero values mean "use the documented
// default"; negative values are errors rather than silently corrected.
func (cfg ClusterConfig) Validate() error {
	if cfg.Nodes <= 0 {
		return fmt.Errorf("brisa: ClusterConfig.Nodes must be positive, got %d", cfg.Nodes)
	}
	if cfg.JoinInterval < 0 {
		return fmt.Errorf("brisa: ClusterConfig.JoinInterval must not be negative, got %v", cfg.JoinInterval)
	}
	if cfg.StabilizeTime < 0 {
		return fmt.Errorf("brisa: ClusterConfig.StabilizeTime must not be negative, got %v", cfg.StabilizeTime)
	}
	if cfg.DetectDelay < 0 {
		return fmt.Errorf("brisa: ClusterConfig.DetectDelay must not be negative, got %v", cfg.DetectDelay)
	}
	if cfg.NodeBandwidth < 0 {
		return fmt.Errorf("brisa: ClusterConfig.NodeBandwidth must not be negative, got %d", cfg.NodeBandwidth)
	}
	if cfg.LinkBandwidth < 0 {
		return fmt.Errorf("brisa: ClusterConfig.LinkBandwidth must not be negative, got %d", cfg.LinkBandwidth)
	}
	if cfg.Workers < 0 {
		return fmt.Errorf("brisa: ClusterConfig.Workers must not be negative, got %d", cfg.Workers)
	}
	if cfg.Faults != nil {
		if err := cfg.Faults.Validate(); err != nil {
			return fmt.Errorf("brisa: ClusterConfig: %w", err)
		}
	}
	if cfg.PeerConfig == nil && cfg.PeerConfigAt == nil {
		if err := cfg.Peer.Validate(); err != nil {
			return err
		}
	}
	return nil
}

// NewCluster builds the peers and registers them with a fresh simulator, or
// reports why the configuration is invalid. Nodes are not joined to each
// other yet; call Bootstrap (or schedule joins manually for custom traces).
func NewCluster(cfg ClusterConfig) (*Cluster, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if cfg.Seed == 0 {
		cfg.Seed = 1
	}
	if cfg.JoinInterval == 0 {
		cfg.JoinInterval = 50 * time.Millisecond
	}
	if cfg.StabilizeTime == 0 {
		cfg.StabilizeTime = 15 * time.Second
	}
	c := &Cluster{
		cfg:   cfg,
		peers: make(map[NodeID]*Peer),
	}
	faults := cfg.Faults
	if faults != nil && faults.Buffer != nil {
		// Surface buffer drops to the affected peer's OnEvent. The copy
		// keeps the caller's FaultModel callback-free and reusable.
		c.dropSinks = make(map[NodeID]func(Event))
		f := *faults
		userDrop := f.OnDrop
		f.OnDrop = func(id NodeID, at time.Time) {
			if sink := c.dropSinks[id]; sink != nil {
				sink(Event{Type: EvMsgDropped, At: at})
			}
			if userDrop != nil {
				userDrop(id, at)
			}
		}
		faults = &f
	}
	c.Net = simnet.New(simnet.Options{
		Seed:              cfg.Seed,
		Latency:           cfg.Latency,
		DetectDelay:       cfg.DetectDelay,
		NodeBandwidth:     cfg.NodeBandwidth,
		Bandwidth:         cfg.LinkBandwidth,
		ProcessingDelay:   cfg.ProcessingDelay,
		Faults:            faults,
		Workers:           cfg.Workers,
		ParallelThreshold: cfg.ParallelThreshold,
	})
	for i := 0; i < cfg.Nodes; i++ {
		if _, err := c.addPeer(); err != nil {
			return nil, err
		}
	}
	return c, nil
}

// peerConfig resolves the configuration of the peer with creation index i
// and identifier id.
func (c *Cluster) peerConfig(i int, id NodeID) Config {
	if c.cfg.PeerConfigAt != nil {
		return c.cfg.PeerConfigAt(i)
	}
	if c.cfg.PeerConfig != nil {
		return c.cfg.PeerConfig(id)
	}
	return c.cfg.Peer
}

func (c *Cluster) addPeer() (*Peer, error) {
	idx := len(c.order)
	c.next++
	id := NodeID(c.next)
	pcfg := c.peerConfig(idx, id)
	p, err := NewPeer(id, pcfg)
	if err != nil {
		c.next--
		return nil, err
	}
	if c.dropSinks != nil && pcfg.OnEvent != nil {
		c.dropSinks[id] = pcfg.OnEvent
	}
	c.peers[id] = p
	c.Net.AddNode(id, p.Handler())
	c.order = append(c.order, id)
	if c.onAddPeer != nil {
		c.onAddPeer(p)
	}
	return p, nil
}

// Bootstrap joins every peer to a random earlier peer, one per
// JoinInterval, then runs the simulation until the overlay stabilizes.
func (c *Cluster) Bootstrap() {
	c.bootstrapped = true
	for i, id := range c.order {
		if i == 0 {
			continue
		}
		i, id := i, id
		c.Net.At(time.Duration(i)*c.cfg.JoinInterval, func() {
			contact := c.order[c.Net.Rand().Intn(i)]
			c.peers[id].Join(contact)
		})
	}
	c.Net.RunUntil(time.Duration(len(c.order))*c.cfg.JoinInterval + c.cfg.StabilizeTime)
}

// Peers returns all peers in creation order, including crashed ones.
func (c *Cluster) Peers() []*Peer {
	out := make([]*Peer, 0, len(c.order))
	for _, id := range c.order {
		out = append(out, c.peers[id])
	}
	return out
}

// AlivePeers returns the peers whose node is still alive.
func (c *Cluster) AlivePeers() []*Peer {
	out := make([]*Peer, 0, len(c.order))
	for _, id := range c.order {
		if c.Net.Alive(id) {
			out = append(out, c.peers[id])
		}
	}
	return out
}

// Peer returns the peer with the given id, or nil.
func (c *Cluster) Peer(id NodeID) *Peer { return c.peers[id] }

// JoinNew adds a brand-new peer and joins it via a random alive member (the
// churn "join" primitive). It returns the new peer. The only error source is
// an invalid PeerConfig-derived configuration.
func (c *Cluster) JoinNew() (*Peer, error) {
	p, err := c.addPeer()
	if err != nil {
		return nil, err
	}
	alive := c.Net.NodeIDs()
	// Exclude the newborn itself from contact candidates.
	candidates := alive[:0]
	for _, id := range alive {
		if id != p.ID() {
			candidates = append(candidates, id)
		}
	}
	if len(candidates) > 0 {
		contact := candidates[c.Net.Rand().Intn(len(candidates))]
		// The new node's Start event is queued but has not run yet; join
		// right after it. The node may also be crashed by churn within the
		// same event batch, before Start ever runs — skip the join then.
		c.Net.After(0, func() {
			if c.Net.Alive(p.ID()) {
				p.Join(contact)
			}
		})
		// Bootstrap retry: a contact can die mid-join under churn, leaving
		// the newborn isolated. Re-join through another member until the
		// overlay accepts it — the shared joinPolicy, scheduled in
		// virtual time.
		c.retryJoin(p, simJoinPolicy.Attempts)
	}
	return p, nil
}

func (c *Cluster) retryJoin(p *Peer, attempts int) {
	if attempts <= 0 {
		return
	}
	c.Net.After(simJoinPolicy.Wait, func() {
		if !c.Net.Alive(p.ID()) || len(p.Neighbors()) > 0 {
			return
		}
		alive := c.Net.NodeIDs()
		candidates := alive[:0]
		for _, id := range alive {
			if id != p.ID() {
				candidates = append(candidates, id)
			}
		}
		if len(candidates) == 0 {
			return
		}
		p.Join(candidates[c.Net.Rand().Intn(len(candidates))])
		c.retryJoin(p, attempts-1)
	})
}

// CrashRandom kills one random alive peer, never one of the excluded ids
// (e.g., the stream source). It returns the victim, or Nil if none was
// available.
func (c *Cluster) CrashRandom(exclude ...NodeID) NodeID {
	skip := make(map[NodeID]bool, len(exclude))
	for _, id := range exclude {
		skip[id] = true
	}
	alive := c.Net.NodeIDs()
	candidates := alive[:0]
	for _, id := range alive {
		if !skip[id] {
			candidates = append(candidates, id)
		}
	}
	if len(candidates) == 0 {
		return 0
	}
	victim := candidates[c.Net.Rand().Intn(len(candidates))]
	c.Net.Crash(victim)
	return victim
}

// RunChurnScript schedules a churn trace in the paper's Listing 1 syntax
// (Splay's churn language) against the cluster, with offsets relative to the
// current virtual time:
//
//	from 0s to 300s const churn 3% each 60s
//	at 1000s set replacement ratio to 100%
//
// Nodes in protect (e.g. the stream source) are never chosen as failure
// victims. The directives are only scheduled; advance the simulation
// (Net.RunFor) to replay them. A replay-time join panics if PeerConfig
// derives an invalid configuration for a churned-in node — that is a bug in
// the caller's PeerConfig, and silently skipping the join would shrink the
// population the script specifies.
func (c *Cluster) RunChurnScript(script string, protect ...NodeID) error {
	parsed, err := trace.Parse(script)
	if err != nil {
		return err
	}
	parsed.Replay(churnScheduler{c}, &churnTarget{c: c, protect: protect})
	return nil
}

// churnScheduler adapts the cluster's virtual clock to the trace replayer,
// anchoring script offsets at the current virtual time.
type churnScheduler struct{ c *Cluster }

func (s churnScheduler) At(offset time.Duration, fn func()) {
	s.c.Net.At(s.c.Net.Since()+offset, fn)
}

// churnTarget adapts the cluster's churn primitives to the trace replayer.
type churnTarget struct {
	c       *Cluster
	protect []NodeID
}

func (t *churnTarget) Join() {
	if _, err := t.c.JoinNew(); err != nil {
		panic("brisa: churn join: " + err.Error())
	}
}
func (t *churnTarget) Fail()     { t.c.CrashRandom(t.protect...) }
func (t *churnTarget) Size() int { return len(t.c.Net.NodeIDs()) }
func (t *churnTarget) Stop()     {}

// Close releases the simulator's worker goroutines (Workers > 1). It is
// idempotent and safe on sequential clusters; a closed cluster still runs,
// executing scheduler windows inline.
func (c *Cluster) Close() { c.Net.Close() }

// Workers returns the effective scheduler shard count (1 unless
// ClusterConfig.Workers enabled sharding and the latency model supports it).
func (c *Cluster) Workers() int { return c.Net.Workers() }

// String summarizes the cluster state.
func (c *Cluster) String() string {
	return fmt.Sprintf("cluster{nodes=%d alive=%d t=%v}",
		len(c.order), len(c.Net.NodeIDs()), c.Net.Since())
}
