package brisa

import (
	"fmt"
	"math/rand"
	"time"

	"repro/internal/simnet"
)

// ClusterConfig describes a simulated deployment.
type ClusterConfig struct {
	// Nodes is the network size.
	Nodes int
	// Peer configures every peer (OnDeliver/OnEvent are shared; wrap them
	// if per-peer state is needed — callbacks receive no peer argument by
	// design, use PeerConfig instead for that).
	Peer Config
	// PeerConfig, when set, derives a per-peer configuration (overrides
	// Peer).
	PeerConfig func(id NodeID) Config
	// Seed drives all simulation randomness (default 1).
	Seed int64
	// Latency is the network latency model (default simnet.Cluster()).
	Latency simnet.LatencyModel
	// JoinInterval staggers the bootstrap joins (default 50ms). The
	// paper's traces join one node per second; experiments compress this.
	JoinInterval time.Duration
	// StabilizeTime is how long Bootstrap runs after the last join
	// (default 15s of virtual time).
	StabilizeTime time.Duration
	// DetectDelay overrides the failure-detection latency.
	DetectDelay time.Duration
	// NodeBandwidth is each node's shared egress throughput in
	// bytes/second (0 = infinite). Floods queue behind it, as on real
	// testbeds.
	NodeBandwidth int64
	// LinkBandwidth is the per-link throughput in bytes/second (0 =
	// infinite).
	LinkBandwidth int64
	// ProcessingDelay, when set, adds per-message scheduling delay at
	// receivers (see simnet.LogNormalDelay).
	ProcessingDelay func(r *rand.Rand) time.Duration
}

// Cluster is a simulated BRISA deployment: N peers on a virtual network.
type Cluster struct {
	// Net is the underlying simulator; use it to advance virtual time,
	// schedule workload events, inject churn, and read traffic counters.
	Net   *simnet.Network
	cfg   ClusterConfig
	peers map[NodeID]*Peer
	order []NodeID
	next  uint64
}

// NewCluster builds the peers and registers them with a fresh simulator.
// Nodes are not joined to each other yet; call Bootstrap (or schedule joins
// manually for custom traces).
func NewCluster(cfg ClusterConfig) *Cluster {
	if cfg.Nodes <= 0 {
		panic("brisa: ClusterConfig.Nodes must be positive")
	}
	if cfg.Seed == 0 {
		cfg.Seed = 1
	}
	if cfg.JoinInterval <= 0 {
		cfg.JoinInterval = 50 * time.Millisecond
	}
	if cfg.StabilizeTime <= 0 {
		cfg.StabilizeTime = 15 * time.Second
	}
	c := &Cluster{
		Net: simnet.New(simnet.Options{
			Seed:            cfg.Seed,
			Latency:         cfg.Latency,
			DetectDelay:     cfg.DetectDelay,
			NodeBandwidth:   cfg.NodeBandwidth,
			Bandwidth:       cfg.LinkBandwidth,
			ProcessingDelay: cfg.ProcessingDelay,
		}),
		cfg:   cfg,
		peers: make(map[NodeID]*Peer),
	}
	for i := 0; i < cfg.Nodes; i++ {
		c.addPeer()
	}
	return c
}

func (c *Cluster) peerConfig(id NodeID) Config {
	if c.cfg.PeerConfig != nil {
		return c.cfg.PeerConfig(id)
	}
	return c.cfg.Peer
}

func (c *Cluster) addPeer() *Peer {
	c.next++
	id := NodeID(c.next)
	p := NewPeer(id, c.peerConfig(id))
	c.peers[id] = p
	c.Net.AddNode(id, p.Handler())
	c.order = append(c.order, id)
	return p
}

// Bootstrap joins every peer to a random earlier peer, one per
// JoinInterval, then runs the simulation until the overlay stabilizes.
func (c *Cluster) Bootstrap() {
	for i, id := range c.order {
		if i == 0 {
			continue
		}
		i, id := i, id
		c.Net.At(time.Duration(i)*c.cfg.JoinInterval, func() {
			contact := c.order[c.Net.Rand().Intn(i)]
			c.peers[id].Join(contact)
		})
	}
	c.Net.RunUntil(time.Duration(len(c.order))*c.cfg.JoinInterval + c.cfg.StabilizeTime)
}

// Peers returns all peers in creation order, including crashed ones.
func (c *Cluster) Peers() []*Peer {
	out := make([]*Peer, 0, len(c.order))
	for _, id := range c.order {
		out = append(out, c.peers[id])
	}
	return out
}

// AlivePeers returns the peers whose node is still alive.
func (c *Cluster) AlivePeers() []*Peer {
	out := make([]*Peer, 0, len(c.order))
	for _, id := range c.order {
		if c.Net.Alive(id) {
			out = append(out, c.peers[id])
		}
	}
	return out
}

// Peer returns the peer with the given id, or nil.
func (c *Cluster) Peer(id NodeID) *Peer { return c.peers[id] }

// JoinNew adds a brand-new peer and joins it via a random alive member (the
// churn "join" primitive). It returns the new peer.
func (c *Cluster) JoinNew() *Peer {
	p := c.addPeer()
	alive := c.Net.NodeIDs()
	// Exclude the newborn itself from contact candidates.
	candidates := alive[:0]
	for _, id := range alive {
		if id != p.ID() {
			candidates = append(candidates, id)
		}
	}
	if len(candidates) > 0 {
		contact := candidates[c.Net.Rand().Intn(len(candidates))]
		// The new node's Start event is queued but has not run yet; join
		// right after it. The node may also be crashed by churn within the
		// same event batch, before Start ever runs — skip the join then.
		c.Net.After(0, func() {
			if c.Net.Alive(p.ID()) {
				p.Join(contact)
			}
		})
		// Bootstrap retry: a contact can die mid-join under churn, leaving
		// the newborn isolated. Re-join through another member until the
		// overlay accepts it (what a deployment's bootstrap loop does).
		c.retryJoin(p, 5)
	}
	return p
}

func (c *Cluster) retryJoin(p *Peer, attempts int) {
	if attempts <= 0 {
		return
	}
	c.Net.After(5*time.Second, func() {
		if !c.Net.Alive(p.ID()) || len(p.Neighbors()) > 0 {
			return
		}
		alive := c.Net.NodeIDs()
		candidates := alive[:0]
		for _, id := range alive {
			if id != p.ID() {
				candidates = append(candidates, id)
			}
		}
		if len(candidates) == 0 {
			return
		}
		p.Join(candidates[c.Net.Rand().Intn(len(candidates))])
		c.retryJoin(p, attempts-1)
	})
}

// CrashRandom kills one random alive peer, never one of the excluded ids
// (e.g., the stream source). It returns the victim, or Nil if none was
// available.
func (c *Cluster) CrashRandom(exclude ...NodeID) NodeID {
	skip := make(map[NodeID]bool, len(exclude))
	for _, id := range exclude {
		skip[id] = true
	}
	alive := c.Net.NodeIDs()
	candidates := alive[:0]
	for _, id := range alive {
		if !skip[id] {
			candidates = append(candidates, id)
		}
	}
	if len(candidates) == 0 {
		return 0
	}
	victim := candidates[c.Net.Rand().Intn(len(candidates))]
	c.Net.Crash(victim)
	return victim
}

// String summarizes the cluster state.
func (c *Cluster) String() string {
	return fmt.Sprintf("cluster{nodes=%d alive=%d t=%v}",
		len(c.order), len(c.Net.NodeIDs()), c.Net.Since())
}
